"""Persistent worker pool and the batch/group shard splitter.

Requests too large to coalesce (their own batch exceeds the queue's
``max_batch``) are split into independent shards — along the batch axis
first, then along the group axis when groups can absorb more workers than
the batch can — and executed on a persistent pool.  Both splits are
bit-exact: batch rows are independent end to end, and each channel group
is an independent frequency-domain product, so reassembling shard outputs
(concatenate along batch, then filters) reproduces the unsharded answer
exactly.

Two pool modes:

- ``"thread"`` (default): a shared :class:`ThreadPoolExecutor`.  Shards
  spend their time inside NumPy's FFT/einsum kernels, which release the
  GIL, so threads scale on multicore boxes and cost nothing on one core.
- ``"process"`` (opt-in): a ``ProcessPoolExecutor`` whose workers each
  hold their *own* warm plan/spectrum/FFT-plan caches.  Plans cross the
  boundary as cache keys, not payloads — :class:`~repro.core.multichannel.
  PolyHankelPlan` pickles to its :class:`~repro.core.planning.PlanSpec`
  and re-resolves against the worker's cache on arrival — so after the
  first call per shape, workers never rebuild plans.

Every shard runs through :func:`execute_conv`, which routes through the
guard chain while supervision is enabled, passing the request family's
coalescing key as the breaker scope: all shards of one family share one
circuit breaker regardless of how the batch axis was cut.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.guard.state import guard_enabled
from repro.observe import span
from repro.observe.registry import counters
from repro.serve.coalescer import ConvRequest

#: Environment knob for the default worker count (also recorded by the
#: bench harness metadata so CI runs are comparable).
WORKERS_ENV = "REPRO_SERVE_WORKERS"


def default_workers() -> int:
    """Worker count from ``REPRO_SERVE_WORKERS`` or the CPU count."""
    value = os.environ.get(WORKERS_ENV)
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def execute_conv(x: np.ndarray, weight: np.ndarray,
                 bias: np.ndarray | None = None, *,
                 padding: int | tuple | str = 0, stride: int | tuple = 1,
                 dilation: int | tuple = 1, groups: int = 1,
                 algorithm: str = "polyhankel", strategy: str = "sum",
                 backend: str | None = None, op: str = "conv2d",
                 output_padding: int | tuple = 0,
                 breaker_key=None) -> np.ndarray:
    """One engine execution, supervised when the guard is enabled.

    *op* selects the operator family (``conv1d``/``conv2d``/``conv3d``/
    ``conv_transpose2d``).  Engine-specific knobs (*strategy*, *backend*)
    are forwarded only to the PolyHankel paths that accept them; other
    algorithms receive the portable parameter set.  *breaker_key* scopes
    the guard's circuit breaker (see :func:`repro.guard.chain.
    guarded_conv2d`).

    When the online selection bandit is active (``REPRO_SELECTION_BANDIT``
    or :func:`repro.selection.bandit.enable_bandit`) every conv2d — the
    coalesced batch path, the shard path and the cluster workers all
    funnel through here — consults it: the bandit may substitute its
    converged arm for the requested algorithm (apply mode) and may run a
    parity-checked shadow of an exploration arm, but the returned result
    is always the primary's (see :func:`repro.selection.bandit.
    bandit_conv2d`).
    """
    from repro.nn import functional as F

    algorithm = getattr(algorithm, "value", algorithm)
    op = str(getattr(op, "value", op))
    engine_kwargs = {}
    if str(algorithm) == "polyhankel":
        # Other algorithms (and "auto", which may lower to one of them)
        # do not accept the PolyHankel-specific knobs.  conv1d rides the
        # 2D engine so it takes both; conv3d's N-D plan has no channel
        # strategy; the transposed adjoint exposes neither.
        if op in ("conv1d", "conv2d"):
            engine_kwargs = {"strategy": strategy, "backend": backend}
        elif op == "conv3d":
            engine_kwargs = {"backend": backend}
    if op == "conv2d":
        from repro.selection.bandit import active_bandit

        bandit = active_bandit()
        if bandit is not None:
            from repro.selection.bandit import bandit_conv2d

            def run(algo: str) -> np.ndarray:
                kw = {"strategy": strategy, "backend": backend} \
                    if algo == "polyhankel" else {}
                return _run_conv2d(x, weight, bias, padding, stride,
                                   dilation, groups, algo, kw,
                                   breaker_key)
            return bandit_conv2d(bandit, x, weight, bias,
                                 padding=padding, stride=stride,
                                 dilation=dilation, groups=groups,
                                 requested=str(algorithm),
                                 strategy=strategy, backend=backend,
                                 run=run)
        return _run_conv2d(x, weight, bias, padding, stride, dilation,
                           groups, str(algorithm), engine_kwargs,
                           breaker_key)
    if guard_enabled():
        from repro.guard.chain import guarded_convnd

        return guarded_convnd(x, weight, op=op, bias=bias, padding=padding,
                              stride=stride, dilation=dilation,
                              groups=groups, output_padding=output_padding,
                              algorithm=algorithm, breaker_key=breaker_key,
                              **engine_kwargs)
    if op == "conv_transpose2d":
        return F.conv_transpose2d(x, weight, bias, padding, stride,
                                  output_padding, dilation, groups,
                                  algorithm=algorithm)
    op_fn = {"conv1d": F.conv1d, "conv3d": F.conv3d}[op]
    return op_fn(x, weight, bias, padding, stride, dilation, groups,
                 algorithm=algorithm, **engine_kwargs)


def _run_conv2d(x, weight, bias, padding, stride, dilation, groups: int,
                algorithm: str, engine_kwargs: dict,
                breaker_key) -> np.ndarray:
    """One conv2d through the normal dispatch (guarded when enabled).

    Factored out of :func:`execute_conv` so the selection bandit can run
    whichever arm it decided through exactly the serving dispatch —
    including the guard chain — rather than a private side path.
    """
    if guard_enabled():
        from repro.guard.chain import guarded_conv2d

        return guarded_conv2d(x, weight, bias=bias, padding=padding,
                              stride=stride, dilation=dilation,
                              groups=groups, algorithm=algorithm,
                              breaker_key=breaker_key, **engine_kwargs)
    from repro.nn import functional as F

    return F.conv2d(x, weight, bias, padding, stride, dilation=dilation,
                    groups=groups, algorithm=algorithm, **engine_kwargs)


def shard_splits(n: int, groups: int,
                 parts: int) -> list[tuple[slice, tuple[int, int]]]:
    """Split an ``(n, groups)`` problem into at most *parts* shards.

    Returns ``(batch_slice, (g_lo, g_hi))`` pairs covering the full
    problem exactly once.  The batch axis is cut first (cheapest: no
    weight slicing); the group axis absorbs leftover parallelism only
    when the batch alone cannot (``n < parts`` and ``groups > 1``).
    """
    if n < 1 or groups < 1 or parts < 1:
        raise ValueError("n, groups and parts must all be >= 1")
    batch_parts = min(parts, n)
    group_parts = 1
    if batch_parts < parts and groups > 1:
        group_parts = min(groups, max(1, parts // batch_parts))
    splits = []
    for rows in np.array_split(np.arange(n), batch_parts):
        batch_slice = slice(int(rows[0]), int(rows[-1]) + 1)
        for gs in np.array_split(np.arange(groups), group_parts):
            splits.append((batch_slice, (int(gs[0]), int(gs[-1]) + 1)))
    return splits


def _shard_arguments(request: ConvRequest, batch_slice: slice,
                     g_lo: int, g_hi: int) -> tuple:
    """(x, weight, bias, groups) restricted to one shard."""
    key = request.key
    if key.op == "conv_transpose2d":
        # Transposed weights are (c_in, c_out/g, kh, kw): axis 0 counts
        # *input* channels and the bias is per output channel, so the
        # forward group-slicing below would cut the wrong axes.
        # run_request never asks for a group split on this op; shards
        # carry the full group count and only the batch axis is cut.
        return request.x[batch_slice], request.weight, request.bias, \
            key.groups
    c_per = request.x.shape[1] // key.groups
    f_per = request.weight.shape[0] // key.groups
    x = request.x[batch_slice]
    weight = request.weight
    bias = request.bias
    if (g_lo, g_hi) != (0, key.groups):
        x = x[:, g_lo * c_per:g_hi * c_per]
        weight = weight[g_lo * f_per:g_hi * f_per]
        if bias is not None:
            bias = bias[g_lo * f_per:g_hi * f_per]
    return x, weight, bias, g_hi - g_lo


def _run_shard(request: ConvRequest, batch_slice: slice, g_lo: int,
               g_hi: int) -> np.ndarray:
    key = request.key
    x, weight, bias, shard_groups = _shard_arguments(
        request, batch_slice, g_lo, g_hi)
    with span("serve.shard", rows=x.shape[0], groups=shard_groups):
        return execute_conv(
            x, weight, bias, padding=key.padding, stride=key.stride,
            dilation=key.dilation, groups=shard_groups,
            algorithm=key.algorithm, strategy=key.strategy,
            backend=key.backend, op=key.op,
            output_padding=key.output_padding, breaker_key=key)


def _process_shard(payload: dict) -> np.ndarray:
    """Module-level shard runner for the process pool (must pickle)."""
    from repro.guard.state import guarded

    if payload.pop("guarded", False):
        with guarded():
            return execute_conv(**payload)
    return execute_conv(**payload)


class WorkerPool:
    """Persistent shard executor: threads by default, processes opt-in."""

    def __init__(self, workers: int | None = None, mode: str = "thread"):
        if mode not in ("thread", "process"):
            raise ValueError(
                f"unknown pool mode {mode!r}; expected 'thread' or "
                "'process'")
        self.workers = workers if workers else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.mode = mode
        self._lock = threading.Lock()
        self._executor = None

    def _get_executor(self):
        with self._lock:
            if self._executor is None:
                if self.mode == "thread":
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="serve-worker")
                else:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers)
            return self._executor

    def run_request(self, request: ConvRequest) -> np.ndarray:
        """Execute one request, sharded across the pool when it helps.

        The caller's thread blocks until every shard returns; results are
        reassembled bit-exactly (batch concat, then filter concat).
        """
        key = request.key
        # Transposed convs shard along the batch axis only (see
        # _shard_arguments); forward convs may also split channel groups.
        split_groups = 1 if key.op == "conv_transpose2d" else key.groups
        splits = shard_splits(request.batch, split_groups, self.workers)
        counters.add("serve.shards", len(splits))
        if len(splits) == 1:
            return _run_shard(request, splits[0][0], *splits[0][1])
        executor = self._get_executor()
        if self.mode == "thread":
            futures = [executor.submit(_run_shard, request, bs, g0, g1)
                       for bs, (g0, g1) in splits]
        else:
            supervised = guard_enabled()
            futures = []
            for bs, (g0, g1) in splits:
                x, weight, bias, shard_groups = _shard_arguments(
                    request, bs, g0, g1)
                futures.append(executor.submit(_process_shard, {
                    "x": x, "weight": weight, "bias": bias,
                    "padding": key.padding, "stride": key.stride,
                    "dilation": key.dilation, "groups": shard_groups,
                    "algorithm": key.algorithm, "strategy": key.strategy,
                    "backend": key.backend, "op": key.op,
                    "output_padding": key.output_padding,
                    "breaker_key": key, "guarded": supervised,
                }))
        results = [f.result() for f in futures]
        return self._assemble(results, splits)

    @staticmethod
    def _assemble(results: list[np.ndarray],
                  splits: list[tuple[slice, tuple[int, int]]]) -> np.ndarray:
        """Reassemble shard outputs: filters within a batch slice, then
        batch slices in order."""
        by_batch: dict[tuple[int, int], list[np.ndarray]] = {}
        for out, (bs, _) in zip(results, splits):
            by_batch.setdefault((bs.start, bs.stop), []).append(out)
        blocks = [parts[0] if len(parts) == 1
                  else np.concatenate(parts, axis=1)
                  for _, parts in sorted(by_batch.items())]
        return blocks[0] if len(blocks) == 1 \
            else np.concatenate(blocks, axis=0)

    def resolve(self, request: ConvRequest) -> None:
        """Run *request* and resolve its future (never raises).

        Sheds the request instead of running it when its deadline has
        already passed or a timed-out caller cancelled its future — the
        pool is a dispatch stage like the queue, and dead work must not
        occupy workers.
        """
        from concurrent.futures import InvalidStateError

        from repro.serve.overload import shed_expired

        if not shed_expired([request]):
            return
        try:
            result = self.run_request(request)
        except BaseException as exc:  # noqa: BLE001 - futures carry it
            if not request.future.done():
                request.future.set_exception(exc)
            return
        try:
            request.future.set_result(result)
        except InvalidStateError:
            pass  # cancelled mid-execution; result is discarded

    def close(self) -> None:
        """Shut the executor down (idempotent; pool can be rebuilt)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
