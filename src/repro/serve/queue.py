"""The dynamic-batching queue: wait a bounded time for companions.

:class:`BatchingQueue` holds submitted requests grouped by coalescing key
and dispatches a group to its executor callback when either trigger fires:

- **size**: the group's stacked row count reaches ``max_batch`` — it is
  dispatched immediately (the dispatcher is woken, no deadline wait);
- **deadline**: the group's *oldest* request has waited ``max_wait_ms`` —
  whatever compatible requests arrived by then ride along (possibly a
  batch of one: a lone request pays at most the deadline, never starves).

Groups dispatch FIFO within a key, and a dispatch takes at most
``max_batch`` stacked rows (a 100-request burst of one key drains as a
train of full batches).  Dispatch happens on the single dispatcher
thread; parallelism across shards is the worker pool's job
(:mod:`repro.serve.pool`), so queue order stays deterministic.

Counters (unified registry): ``serve.batches`` (one per dispatch),
``serve.batch_size`` (sum of stacked rows — mean batch size is
``batch_size / batches``), ``serve.coalesced`` (requests that shared a
dispatch with at least one other request), ``serve.queue_wait_ms``
(summed submit-to-dispatch latency).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.observe import span
from repro.observe.registry import counters
from repro.serve.coalescer import CoalesceKey, ConvRequest
from repro.serve.overload import Overloaded, shed_expired, shed_request


class BatchingQueue:
    """Coalesce compatible requests under a size bound and a deadline."""

    def __init__(self, execute: Callable[[list[ConvRequest]], None],
                 max_batch: int = 8, max_wait_ms: float = 2.0):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self._execute = execute
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self._cond = threading.Condition()
        self._pending: OrderedDict[CoalesceKey, list[ConvRequest]] = \
            OrderedDict()
        self._closed = False
        #: Full-batch dispatches currently running inline on submitter
        #: threads; close() must not return while any are in flight.
        self._inline_active = 0
        self._dispatcher = threading.Thread(
            target=self._run, name="serve-dispatch", daemon=True)
        self._dispatcher.start()

    # -- producer side -------------------------------------------------------

    def submit(self, request: ConvRequest) -> None:
        """Enqueue one request; its future resolves after dispatch.

        A group that reaches ``max_batch`` is dispatched *inline on the
        submitting thread*: under a burst, handing the full batch to the
        dispatcher thread would only ping-pong the GIL between producer
        and dispatcher (each wake costs a context switch plus a GIL
        handoff), so the producer pays for its own full batches and the
        dispatcher thread handles nothing but deadline-expired partial
        groups.  Only a *new* group needs a notify — the dispatcher must
        learn a deadline exists; riders joining a non-full group change
        nothing it could act on.
        """
        batch = None
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            group = self._pending.setdefault(request.key, [])
            group.append(request)
            if self._rows(group) >= self.max_batch:
                batch = self._pop_group(request.key, group)
                # Count the inline dispatch *before* dropping the lock so
                # a concurrent close() waits for it even if it has not
                # started executing yet.
                self._inline_active += 1
            elif len(group) == 1:
                self._cond.notify()
        if batch is not None:
            try:
                self._dispatch(batch)
            finally:
                with self._cond:
                    self._inline_active -= 1
                    if not self._inline_active:
                        self._cond.notify_all()

    def pending_count(self) -> int:
        """Requests currently waiting (introspection and tests)."""
        with self._cond:
            return sum(len(g) for g in self._pending.values())

    def shed_oldest(self) -> ConvRequest | None:
        """Evict the oldest queued request (``shed-oldest`` admission).

        The victim's future resolves with :class:`Overloaded`; returns it,
        or None when nothing is queued (everything is already executing —
        admission must then fall back to rejecting the newcomer).
        """
        with self._cond:
            oldest_key = None
            for key, group in self._pending.items():
                if oldest_key is None or group[0].enqueued_at \
                        < self._pending[oldest_key][0].enqueued_at:
                    oldest_key = key
            if oldest_key is None:
                return None
            group = self._pending[oldest_key]
            victim = group.pop(0)
            if not group:
                del self._pending[oldest_key]
        # Resolve outside the lock: done-callbacks run on this thread.
        shed_request(victim, Overloaded(
            "evicted by shed-oldest admission policy: server is at its "
            "in-flight budget"))
        return victim

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting requests, drain what is queued, join the
        dispatcher and every inline dispatch.  Idempotent and safe under
        concurrent submitters: no dispatch — deadline-fired on the
        dispatcher thread or full-batch-fired inline on a submitter —
        is still running when this returns.  Callable from the executor
        callback itself (the dispatcher thread is never self-joined).
        """
        deadline = None if timeout is None else time.monotonic() + timeout

        def remaining() -> float | None:
            if deadline is None:
                return None
            return max(deadline - time.monotonic(), 0.0)

        with self._cond:
            self._closed = True
            self._cond.notify_all()
            # Inline dispatches were counted under this lock before their
            # submitter released it, so none can be missed here.
            while self._inline_active:
                left = remaining()
                if left == 0.0:
                    break
                if not self._cond.wait(left):
                    break
        if threading.current_thread() is not self._dispatcher:
            self._dispatcher.join(remaining())

    # -- dispatcher side -----------------------------------------------------

    def _rows(self, group: list[ConvRequest]) -> int:
        return sum(r.batch for r in group)

    def _pop_group(self, key: CoalesceKey,
                   group: list[ConvRequest]) -> list[ConvRequest]:
        """Pop a FIFO slice of at most ``max_batch`` stacked rows from
        *group* (always at least one request).  Caller holds the lock."""
        batch = []
        rows = 0
        while group and (not batch
                         or rows + group[0].batch <= self.max_batch):
            request = group.pop(0)
            rows += request.batch
            batch.append(request)
        if not group:
            del self._pending[key]
        return batch

    def _pop_ready(self, now: float, drain: bool) -> list[ConvRequest] | None:
        """Pop the first group that is full or past deadline.  Caller
        holds the lock."""
        for key, group in self._pending.items():
            due = drain or (now - group[0].enqueued_at >= self.max_wait_s)
            if due or self._rows(group) >= self.max_batch:
                return self._pop_group(key, group)
        return None

    def _next_deadline(self, now: float) -> float | None:
        """Seconds until the earliest group deadline (None when empty)."""
        if not self._pending:
            return None
        oldest = min(g[0].enqueued_at for g in self._pending.values())
        return max(oldest + self.max_wait_s - now, 0.0)

    def _run(self) -> None:
        while True:
            with self._cond:
                while True:
                    batch = self._pop_ready(time.monotonic(), self._closed)
                    if batch is not None:
                        break
                    if self._closed:  # closed and fully drained
                        return
                    self._cond.wait(self._next_deadline(time.monotonic()))
            self._dispatch(batch)

    def _dispatch(self, batch: list[ConvRequest]) -> None:
        now = time.monotonic()
        # Shed dead riders at the dispatch boundary: a request whose
        # deadline expired while it waited for companions (or whose
        # future a timed-out sync caller cancelled) must never reach the
        # engine, and must not distort the batch-size counters.
        batch = shed_expired(batch, now)
        if not batch:
            return
        rows = self._rows(batch)
        counters.add("serve.batches")
        counters.add("serve.batch_size", rows)
        if len(batch) > 1:
            counters.add("serve.coalesced", len(batch))
        counters.add("serve.queue_wait_ms",
                     sum(now - r.enqueued_at for r in batch) * 1e3)
        try:
            with span("serve.dispatch", requests=len(batch), rows=rows):
                self._execute(batch)
        except BaseException as exc:  # noqa: BLE001 - futures carry it
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
