"""Async dynamic-batching serving layer in front of the PolyHankel engine.

Every entry point before this package executed one request at a time on
one thread: the plan cache, spectrum cache and guard chain were warm and
ready, but nothing amortized them across *concurrent* requests.  This
package closes that gap with the standard serving architecture:

- :mod:`repro.serve.coalescer` — the coalescing key: which requests may
  legally ride one stacked batch (same geometry, same weight array, same
  conv parameters, same algorithm/strategy/backend), plus the pure
  stack/split helpers.  Stacking along the batch axis is **bit-exact**:
  every engine stage (row FFTs, the channel einsum, the inverse FFT, the
  gather) is row-independent, so a coalesced answer equals the answer
  each request would have gotten alone.
- :mod:`repro.serve.queue` — :class:`BatchingQueue`: requests wait at
  most ``max_wait_ms`` for compatible companions; a group is dispatched
  the moment it holds ``max_batch`` stacked rows or its oldest request's
  deadline expires.
- :mod:`repro.serve.pool` — the persistent :class:`WorkerPool` (threads
  by default, a ``ProcessPoolExecutor`` with per-worker warm plan and
  spectrum caches as an opt-in) and the batch/group shard splitter for
  oversized requests.
- :mod:`repro.serve.api` — :class:`ConvServer`, the user-facing object,
  and the process-wide default server used by
  :func:`repro.nn.functional.conv2d_async` and ``Conv2d.submit``.
- :mod:`repro.serve.shm` / :mod:`repro.serve.cluster` /
  :mod:`repro.serve.router` — the multi-process scale-out tier:
  :class:`ClusterServer` routes coalesced batches to N worker replica
  processes (each owning warm plan/spectrum caches) over a shared-memory
  slot arena with generation-counter crash detection, so no tensor ever
  crosses a process boundary by pickle.
- :mod:`repro.serve.loadgen` — the Poisson open-loop saturation bench
  behind ``repro serve-bench --workers N`` and the CI scale-out gate,
  plus the overload sweep behind ``--overload`` / ``--check-goodput``.
- :mod:`repro.serve.overload` — the request-lifecycle robustness layer:
  absolute deadlines propagated from the front door through queue, pool
  and cluster (every stage sheds expired work as a typed
  :class:`DeadlineExceeded` instead of executing it), bounded in-flight
  admission (:class:`Overloaded`, ``reject-new`` / ``shed-oldest``
  policies) and the :class:`ServeConfig` knobs — all overridable via
  ``REPRO_SERVE_*`` environment variables.

Everything is observable through the unified counter registry
(``serve.requests``, ``serve.coalesced``, ``serve.batches``,
``serve.batch_size``, ``serve.queue_wait_ms``, ``serve.shards``, and the
overload outcomes ``serve.completed`` / ``serve.shed`` /
``serve.rejected`` / ``serve.slot_timeout``) and runs under the guard
chain when supervision is enabled, with the circuit breaker scoped by
coalescing key so every shard of one request family shares breaker
state.
"""

from repro.serve.api import (
    ConvServer,
    configure_server,
    get_server,
    set_server,
    shutdown_server,
)
from repro.serve.coalescer import (
    CoalesceKey,
    ConvRequest,
    coalesce_key,
    make_request,
    split_result,
    stack_requests,
)
from repro.serve.overload import (
    DeadlineExceeded,
    Overloaded,
    ServeConfig,
)
from repro.serve.pool import WorkerPool, execute_conv, shard_splits
from repro.serve.queue import BatchingQueue
from repro.serve.router import ClusterServer, ClusterUnavailableError
from repro.serve.shm import (
    SlotAllocator,
    SlotsExhaustedError,
    SlotTimeout,
    TensorArena,
    TornWriteError,
)

__all__ = [
    "BatchingQueue",
    "CoalesceKey",
    "ClusterServer",
    "ClusterUnavailableError",
    "ConvRequest",
    "ConvServer",
    "DeadlineExceeded",
    "Overloaded",
    "ServeConfig",
    "SlotAllocator",
    "SlotsExhaustedError",
    "SlotTimeout",
    "TensorArena",
    "TornWriteError",
    "WorkerPool",
    "coalesce_key",
    "configure_server",
    "execute_conv",
    "get_server",
    "make_request",
    "set_server",
    "shard_splits",
    "shutdown_server",
    "split_result",
    "stack_requests",
]
