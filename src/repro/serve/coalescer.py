"""Coalescing: deciding which requests may legally share one batch.

Two requests may be stacked along the batch axis if and only if a single
``conv2d`` call over the concatenated input would compute exactly what two
separate calls would: same per-image geometry, the *same weight array*
(identity, not just equal values — the stacked call consults the spectrum
cache once, so entries must alias the same kernel), the same bias object,
and the same convolution parameters, algorithm, channel strategy and FFT
backend.  All of that is captured by :class:`CoalesceKey`.

The key is also the guard scope under concurrency: shards of one request
family pass the key to :func:`repro.guard.chain.guarded_conv2d` as
``breaker_key``, so a chronically failing family opens *one* breaker no
matter how the batch axis was split (per-shard shapes differ only in
``n``, which the key deliberately excludes).

Parameter spellings are canonicalized the same way :class:`~repro.utils.
shapes.ConvShape` does (``(1, 1)`` collapses to ``1``, an ``(ph, pw)``
pair expands to the 4-tuple before collapsing) so equivalent spellings
coalesce — without paying ConvShape construction per request.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np


def _canonical_pair(value) -> int | tuple:
    """Collapse a uniform per-axis stride/dilation tuple to an int (cheap,
    no validation — the engine validates on execution)."""
    if isinstance(value, (tuple, list)):
        value = tuple(value)
        if value and len(set(value)) == 1:
            return value[0]
        return value
    return value


def _canonical_padding(value, ndim: int = 2) -> int | tuple | str:
    """Collapse any padding spelling to its canonical hashable form.

    Mirrors :func:`repro.utils.shapes.normalize_padding_nd`: a per-axis
    symmetric tuple (one entry per spatial dimension) expands to the flat
    ``(lo, hi) * ndim`` form before the uniform collapse, so equivalent
    spellings coalesce regardless of rank.
    """
    if isinstance(value, (tuple, list)):
        value = tuple(value)
        if len(value) == ndim:
            value = tuple(p for p in value for _ in range(2))
        if value and len(set(value)) == 1:
            return value[0]
        return value
    return value


class CoalesceKey(NamedTuple):
    """Everything that must match for requests to share a stacked batch.

    A ``NamedTuple`` rather than a frozen dataclass: the key is built on
    every ``submit`` and a frozen dataclass pays one ``object.__setattr__``
    per field, which at twelve fields is measurable on the hot path.
    """

    input_chw: tuple[int, ...]
    weight_id: int
    weight_shape: tuple[int, ...]
    bias_id: int | None
    dtype: str
    padding: int | tuple | str
    stride: int | tuple
    dilation: int | tuple
    groups: int
    algorithm: str
    strategy: str
    backend: str | None
    #: Operator family ("conv1d" / "conv2d" / "conv3d" /
    #: "conv_transpose2d").  Part of the key: a conv and its adjoint over
    #: identical geometry must never share a stacked call.
    op: str = "conv2d"
    #: Extra rows/cols appended to a transposed convolution's output to
    #: disambiguate the strided output size; always 0 for forward convs.
    output_padding: int | tuple = 0


#: Expected array rank (batch + channel + spatial dims) per operator,
#: with the layout names the error messages quote.
OP_RANKS: dict[str, tuple[int, str, str]] = {
    "conv1d": (3, "NCL", "FCK"),
    "conv2d": (4, "NCHW", "FCKhKw"),
    "conv_transpose2d": (4, "NCHW", "CFKhKw (c_in, c_out/g, kh, kw)"),
    "conv3d": (5, "NCDHW", "FCKdKhKw"),
}


def coalesce_key(x: np.ndarray, weight: np.ndarray,
                 bias: np.ndarray | None = None,
                 padding: int | tuple | str = 0, stride: int | tuple = 1,
                 dilation: int | tuple = 1, groups: int = 1,
                 algorithm: str = "polyhankel", strategy: str = "sum",
                 backend: str | None = None, op: str = "conv2d",
                 output_padding: int | tuple = 0) -> CoalesceKey:
    """The :class:`CoalesceKey` of one request (arrays keyed by identity)."""
    algorithm = getattr(algorithm, "value", algorithm)
    op = getattr(op, "value", op)
    ndim = x.ndim - 2
    return CoalesceKey(
        input_chw=tuple(x.shape[1:]),
        weight_id=id(weight),
        weight_shape=tuple(weight.shape),
        bias_id=None if bias is None else id(bias),
        dtype=x.dtype.char,  # .char, not str(): dtype.__str__ costs ~8us
        padding=_canonical_padding(padding, ndim),
        stride=_canonical_pair(stride),
        dilation=_canonical_pair(dilation),
        groups=int(groups),
        algorithm=str(algorithm),
        strategy=str(strategy),
        backend=backend,
        op=str(op),
        output_padding=_canonical_pair(output_padding),
    )


@dataclass
class ConvRequest:
    """One in-flight convolution request with its result future.

    The request pins strong references to its arrays, so the ``id``-based
    key fields of :attr:`key` stay valid for the request's lifetime.
    """

    x: np.ndarray
    weight: np.ndarray
    bias: np.ndarray | None
    key: CoalesceKey
    #: Stacked rows this request contributes (its own batch size); a plain
    #: field so the queue's row accounting never re-derives it per scan.
    batch: int = 0
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    #: Absolute monotonic deadline (``time.monotonic()`` clock) or None
    #: for no deadline.  Every serving stage sheds the request instead of
    #: executing it once this passes — see :mod:`repro.serve.overload`.
    deadline: float | None = None

    def __post_init__(self) -> None:
        if not self.batch:
            self.batch = int(self.x.shape[0])

    def expired(self, now: float | None = None) -> bool:
        """Whether the deadline has passed (False when unbounded)."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline


def make_request(x: np.ndarray, weight: np.ndarray,
                 bias: np.ndarray | None = None,
                 padding: int | tuple | str = 0, stride: int | tuple = 1,
                 dilation: int | tuple = 1, groups: int = 1,
                 algorithm: str = "polyhankel", strategy: str = "sum",
                 backend: str | None = None, op: str = "conv2d",
                 output_padding: int | tuple = 0,
                 deadline: float | None = None) -> ConvRequest:
    """Validate lightly and wrap one call's arguments as a request.

    *deadline* is an **absolute** ``time.monotonic()`` instant (front
    doors convert a relative ``deadline_s`` via
    :func:`repro.serve.overload.resolve_deadline`).
    """
    x = np.asarray(x, dtype=float)
    weight = np.asarray(weight, dtype=float)
    op = str(getattr(op, "value", op))
    if op not in OP_RANKS:
        raise ValueError(
            f"unknown op {op!r}; expected one of {sorted(OP_RANKS)}")
    rank, x_layout, w_layout = OP_RANKS[op]
    if x.ndim != rank:
        raise ValueError(
            f"{op} input must be {x_layout}, got shape {x.shape}")
    if weight.ndim != rank:
        raise ValueError(
            f"{op} weight must be {w_layout}, got shape {weight.shape}")
    key = coalesce_key(x, weight, bias, padding, stride, dilation, groups,
                       algorithm, strategy, backend, op, output_padding)
    return ConvRequest(x=x, weight=weight, bias=bias, key=key,
                       deadline=deadline)


def stack_requests(requests: list[ConvRequest]) -> np.ndarray:
    """Concatenate compatible requests along the batch axis (bit-exact:
    every engine stage is row-independent)."""
    if len(requests) == 1:
        return requests[0].x
    return np.concatenate([r.x for r in requests], axis=0)


def split_result(out: np.ndarray,
                 requests: list[ConvRequest]) -> list[np.ndarray]:
    """Slice a stacked result back into per-request outputs.

    Returns contiguous copies so no request's result pins the whole
    stacked array alive (requests outlive the batch independently).
    """
    if len(requests) == 1:
        return [out]
    results = []
    row = 0
    for request in requests:
        results.append(np.ascontiguousarray(out[row:row + request.batch]))
        row += request.batch
    return results
