"""Zero-pickle tensor transport over ``multiprocessing.shared_memory``.

The process mode of :mod:`repro.serve.pool` ships every shard's arrays by
pickling them through the executor — serialization dominates exactly
where the engine is fastest.  This module is the replacement transport
for the cluster tier: tensors move through a **slot arena** in one shared
memory segment, and only tiny plain-data control messages (slot indices,
generation counters, conv parameters) cross the pipe.

Layout: the segment is divided into ``slots`` fixed-size slots.  Each
slot starts with a fixed 128-byte header followed by the payload:

    +---------+----------------------------------------------+
    | header  | seq · nbytes · dtype · ndim · shape[8]       |
    +---------+----------------------------------------------+
    | payload | raw C-contiguous tensor bytes                |
    +---------+----------------------------------------------+

``seq`` is a per-slot **generation counter** with seqlock parity: a
writer bumps it to an odd value before touching the payload and to the
next even value after, so a write that died halfway (a worker SIGKILLed
mid-``memcpy``) leaves the counter odd and every reader refuses the torn
slot instead of consuming garbage.  Readers pass the generation they were
told to expect; a mismatch means the slot was re-used for a younger
tensor and the read is stale.  The counter is *not* a lock-free
synchronization protocol — completion is signalled through the control
pipe, which happens-after the payload write — it is purely crash/stale
detection.

Slot ownership is centralized: the router process owns the free-list
(:class:`SlotAllocator`) and assigns both the request slot and the
response slot of every dispatch, so workers never allocate and two
processes never race for a slot.  When every slot is in flight,
``acquire`` blocks — that is the cluster's backpressure: submitters stall
instead of growing an unbounded pickle queue.

The control plane is hostile to tensors by construction:
:func:`send_control` refuses to pickle any ``np.ndarray`` (see
``_ControlPickler.reducer_override``), so an array can never silently
fall back to the serialization path this module exists to remove.
"""

from __future__ import annotations

import os
import pickle
import secrets
import threading
import time
from multiprocessing import shared_memory

import numpy as np

from repro.observe.registry import counters

#: Prefix of every arena segment name; the CI leak check and the test
#: session teardown look for ``/dev/shm/<prefix>*`` leftovers.
ARENA_PREFIX = "repro_arena_"

#: Maximum tensor rank the slot header can describe.
MAX_DIMS = 8

#: Bytes reserved for the header at the start of every slot (padded well
#: past the packed struct so payloads start 128-byte aligned).
HEADER_BYTES = 128

HEADER_DTYPE = np.dtype([
    ("seq", np.uint64),
    ("nbytes", np.int64),
    ("dtype", "S8"),      # numpy dtype.str, e.g. b"<f8"
    ("ndim", np.uint8),
    ("shape", np.int64, (MAX_DIMS,)),
])

assert HEADER_DTYPE.itemsize <= HEADER_BYTES


class TornWriteError(RuntimeError):
    """A slot's generation counter does not match the expected stable
    value: either the writer crashed mid-write (odd counter) or the slot
    was recycled for a younger tensor (stale generation)."""


class SlotsExhaustedError(RuntimeError):
    """No arena slot became free within the allowed wait."""


class SlotTimeout(SlotsExhaustedError, TimeoutError):
    """The allocator's wait for free slots timed out.

    Subclasses :class:`SlotsExhaustedError` (so existing handlers keep
    working) *and* :class:`TimeoutError` (so overload-aware callers can
    treat slot starvation like any other deadline miss).  Counted under
    ``serve.slot_timeout`` — starvation must be observable on a dashboard
    before it cascades into cluster-wide unavailability.
    """


#: Heartbeat record one worker stamps per loop iteration (see
#: :meth:`TensorArena.beat`).  ``generation`` is the router-assigned
#: incarnation counter, so a stale stamp from a killed predecessor can
#: never vouch for its respawned successor.
HEARTBEAT_DTYPE = np.dtype([
    ("generation", np.uint64),
    ("stamp", np.float64),    # time.monotonic() at the stamp
    ("pid", np.int64),
])

#: Bytes reserved per heartbeat record (padded past the packed struct).
HEARTBEAT_BYTES = 32

assert HEARTBEAT_DTYPE.itemsize <= HEARTBEAT_BYTES


class TensorArena:
    """One shared-memory segment cut into fixed-size header+payload slots.

    The creating process owns the segment and must :meth:`unlink` it; any
    number of other processes may :meth:`attach` by name and read/write
    slots they were handed.  All slot coordination (who may write which
    slot when) is the caller's job — see :class:`SlotAllocator` and
    :mod:`repro.serve.router`.
    """

    def __init__(self, slots: int, slot_bytes: int, name: str | None = None,
                 heartbeats: int = 0, _create: bool = True):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if slot_bytes < 1:
            raise ValueError("slot_bytes must be >= 1")
        if heartbeats < 0:
            raise ValueError("heartbeats must be >= 0")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self.heartbeats = int(heartbeats)
        self._stride = HEADER_BYTES + self.slot_bytes
        size = self._stride * self.slots \
            + HEARTBEAT_BYTES * self.heartbeats
        if name is None:
            name = f"{ARENA_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        self.owner = _create
        if _create or os.name != "posix":
            self._shm = shared_memory.SharedMemory(
                name=name, create=_create, size=size)
        else:
            # Python's resource tracker registers every attach (bpo-39959)
            # and would unlink the segment when *this* process exits even
            # though the router still owns it.  Unregistering afterwards
            # is wrong under fork (the tracker is shared, so it would drop
            # the creator's registration too); instead, suppress the
            # registration so only the creator's entry ever exists.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def _skip_shm(name_, rtype):  # pragma: no cover - trivial
                if rtype != "shared_memory":
                    original_register(name_, rtype)

            resource_tracker.register = _skip_shm
            try:
                self._shm = shared_memory.SharedMemory(
                    name=name, create=False, size=size)
            finally:
                resource_tracker.register = original_register
        self._closed = False

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int,
               heartbeats: int = 0) -> "TensorArena":
        """Map an existing arena created by another process."""
        return cls(slots, slot_bytes, name=name, heartbeats=heartbeats,
                   _create=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # -- slot access ---------------------------------------------------------

    def _header(self, slot: int) -> np.void:
        """Mutable structured view of one slot's header."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range 0..{self.slots - 1}")
        arr = np.ndarray((1,), dtype=HEADER_DTYPE, buffer=self._shm.buf,
                         offset=slot * self._stride)
        return arr[0]

    def _payload(self, slot: int, nbytes: int) -> np.ndarray:
        return np.ndarray((nbytes,), dtype=np.uint8, buffer=self._shm.buf,
                          offset=slot * self._stride + HEADER_BYTES)

    def write(self, slot: int, array: np.ndarray) -> int:
        """Copy *array* into *slot*; returns the new (even) generation.

        The single ``memcpy`` here is the only data movement on the
        request/response hot path — no pickle, no encode, no reallocation
        on the reader side beyond its own copy-out.
        """
        shape_in = np.shape(array)
        # ascontiguousarray promotes 0-d to 1-d; the header keeps the
        # caller's true shape so the reader reconstructs it exactly.
        array = np.ascontiguousarray(array)
        if len(shape_in) != array.ndim:
            array = array.reshape(shape_in)
        if array.nbytes > self.slot_bytes:
            raise ValueError(
                f"tensor of {array.nbytes} bytes does not fit a "
                f"{self.slot_bytes}-byte slot; size the arena for the "
                f"largest request (slot_bytes)")
        if array.ndim > MAX_DIMS:
            raise ValueError(f"rank {array.ndim} exceeds MAX_DIMS "
                             f"({MAX_DIMS})")
        header = self._header(slot)
        seq = int(header["seq"])
        if seq % 2:
            # The previous writer died mid-write; step past its torn
            # generation so ours lands on fresh even/odd values.
            seq += 1
        header["seq"] = seq + 1  # odd: write in progress
        header["nbytes"] = array.nbytes
        header["dtype"] = array.dtype.str.encode("ascii")
        header["ndim"] = array.ndim
        shape = np.zeros(MAX_DIMS, dtype=np.int64)
        shape[:array.ndim] = array.shape
        header["shape"] = shape
        if array.nbytes:
            self._payload(slot, array.nbytes)[:] = \
                array.reshape(-1).view(np.uint8)
        header["seq"] = seq + 2  # even: stable
        return seq + 2

    def read(self, slot: int, expected_seq: int,
             copy: bool = True) -> np.ndarray:
        """Reconstruct the tensor in *slot* at generation *expected_seq*.

        ``copy=False`` returns a view aliasing the shared buffer —
        zero-copy for a worker that immediately feeds the tensor to the
        engine — valid only until the slot is recycled.  ``copy=True``
        re-checks the generation *after* copying, so a racing writer
        cannot hand the caller a half-old, half-new tensor.
        """
        header = self._header(slot)
        seq = int(header["seq"])
        if seq % 2:
            raise TornWriteError(
                f"slot {slot}: generation {seq} is odd — the writer "
                f"died mid-write; payload is torn")
        if seq != expected_seq:
            raise TornWriteError(
                f"slot {slot}: generation {seq} != expected "
                f"{expected_seq} — slot was recycled (stale read)")
        dtype = np.dtype(bytes(header["dtype"]).decode("ascii"))
        ndim = int(header["ndim"])
        shape = tuple(int(s) for s in header["shape"][:ndim])
        nbytes = int(header["nbytes"])
        view = self._payload(slot, nbytes).view(dtype).reshape(shape)
        if not copy:
            return view
        out = np.array(view)
        if int(self._header(slot)["seq"]) != expected_seq:
            raise TornWriteError(
                f"slot {slot}: generation changed during copy-out")
        return out

    # -- liveness heartbeats -------------------------------------------------

    def _heartbeat(self, index: int) -> np.void:
        """Mutable view of one heartbeat record past the slot region."""
        if not 0 <= index < self.heartbeats:
            raise IndexError(
                f"heartbeat {index} out of range 0..{self.heartbeats - 1}")
        arr = np.ndarray(
            (1,), dtype=HEARTBEAT_DTYPE, buffer=self._shm.buf,
            offset=self._stride * self.slots + index * HEARTBEAT_BYTES)
        return arr[0]

    def beat(self, index: int, generation: int) -> None:
        """Stamp heartbeat *index* with *generation* and ``monotonic()``.

        Single-writer by construction (each worker owns its own record),
        so no seqlock: a torn read can at worst delay or spuriously
        trigger one watchdog scan, and the generation check filters
        stamps left by a previous incarnation of the worker slot.
        """
        record = self._heartbeat(index)
        record["generation"] = int(generation)
        record["stamp"] = time.monotonic()
        record["pid"] = os.getpid()

    def read_heartbeat(self, index: int) -> dict:
        """The last stamp of heartbeat *index* (all-zero before any)."""
        record = self._heartbeat(index)
        return {"generation": int(record["generation"]),
                "stamp": float(record["stamp"]),
                "pid": int(record["pid"])}

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment (and unlink it when this process owns it)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "TensorArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SlotAllocator:
    """Router-owned free-list over an arena's slots with backpressure.

    ``acquire_many`` hands out all requested slots atomically — a
    dispatch needs its request *and* response slot together, and taking
    them one at a time would let N submitters each hold one slot while
    waiting for a second, deadlocking the arena.

    *reserved* slots are headroom only ``use_reserve=True`` acquirers
    may draw on.  Dispatch slot pairs live until their futures resolve,
    so enough of them can pin the whole arena; a weight shipment to a
    freshly (re)spawned replica then needs one more slot before any
    dispatch can complete — a deadlock.  Ships are transient (released
    on the worker's ack, or on the replica's death), so reserving one
    slot for them breaks the cycle without shrinking steady-state
    throughput.
    """

    def __init__(self, arena: TensorArena, reserved: int = 0):
        if not 0 <= reserved < arena.slots:
            raise ValueError(
                f"reserved must be in [0, {arena.slots}) for a "
                f"{arena.slots}-slot arena, got {reserved}")
        self._arena = arena
        self._reserved = int(reserved)
        self._cond = threading.Condition()
        self._free = list(range(arena.slots))
        self._closed = False

    def available(self) -> int:
        with self._cond:
            return len(self._free)

    def acquire_many(self, count: int, timeout: float | None = None,
                     *, use_reserve: bool = False) -> list[int]:
        """Pop *count* free slots, blocking until all are available.

        Ordinary acquirers never dip into the reserved headroom; pass
        ``use_reserve=True`` for transient holds (weight shipments) that
        must make progress even when dispatches pin the rest.
        """
        floor = 0 if use_reserve else self._reserved
        if count + floor > self._arena.slots:
            raise ValueError(
                f"cannot acquire {count} slots from a "
                f"{self._arena.slots}-slot arena "
                f"({self._reserved} reserved)")
        deadline = None if timeout is None else time.monotonic() + timeout
        start = time.monotonic()
        with self._cond:
            while len(self._free) - floor < count:
                if self._closed:
                    raise SlotsExhaustedError("allocator is closed")
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    counters.add("serve.slot_timeout")
                    raise SlotTimeout(
                        f"no {count} free slot(s) within {timeout:g}s "
                        f"({len(self._free)}/{self._arena.slots} free) — "
                        f"grow the arena or slow the offered load")
                counters.add("serve.cluster.slot_waits")
                self._cond.wait(remaining)
            if self._closed:
                raise SlotsExhaustedError("allocator is closed")
            slots = [self._free.pop() for _ in range(count)]
        waited = time.monotonic() - start
        if waited > 0:
            counters.add("serve.cluster.slot_wait_ms", waited * 1e3)
        return slots

    def acquire(self, timeout: float | None = None,
                *, use_reserve: bool = False) -> int:
        return self.acquire_many(1, timeout, use_reserve=use_reserve)[0]

    def release(self, *slots: int) -> None:
        with self._cond:
            for slot in slots:
                if slot in self._free:  # pragma: no cover - double free
                    raise RuntimeError(f"slot {slot} double-released")
                self._free.append(slot)
            self._cond.notify_all()

    def close(self) -> None:
        """Wake every blocked acquirer with an error (server shutdown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


# ---------------------------------------------------------------------------
# Pickle-free control plane.
# ---------------------------------------------------------------------------


class _ControlPickler(pickle.Pickler):
    """Pickler that refuses tensors.

    Every cluster control message goes through this class, so the
    "tensors never travel by pickle" property is enforced in production,
    not just asserted by a test: an ndarray reaching the control plane
    raises instead of silently re-introducing the serialization cost the
    arena removes.
    """

    def reducer_override(self, obj):
        if isinstance(obj, np.ndarray):
            raise TypeError(
                "np.ndarray on the cluster control plane — tensors must "
                "travel through the shared-memory arena, not pickle")
        return NotImplemented


def dumps_control(message: object) -> bytes:
    """Serialize one control message, rejecting ndarray payloads."""
    import io

    buf = io.BytesIO()
    _ControlPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(message)
    return buf.getvalue()


def send_control(conn, message: object) -> None:
    """Send one control message over a ``multiprocessing`` connection."""
    conn.send_bytes(dumps_control(message))


def recv_control(conn):
    """Receive one control message (blocking)."""
    return pickle.loads(conn.recv_bytes())
