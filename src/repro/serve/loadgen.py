"""Poisson open-loop saturation bench for the cluster serving tier.

Closed-loop benchmarks (submit, wait, submit) measure latency at an
offered load the server itself controls — they cannot show whether
adding workers adds *capacity*.  This generator is open-loop: request
arrival times are drawn from a seeded Poisson process whose rate is
calibrated **above** the largest configuration's capacity, submissions
happen on schedule regardless of completions (up to the arena's
backpressure), and each request's latency is measured from its
*scheduled arrival*, not from when the submitter got around to it.  At
saturation, served-rps is the capacity of the configuration and the
p50/p99 latencies expose queueing — so the 1/2/4-worker sweep reads as
a scale-out curve.

The ≥1.5x two-worker scale-out contract only holds where two workers
have two cores to run on; each entry therefore records
``gated: os.cpu_count() >= 2``, the regression gate enforces the floor
only when gated, and the CI `serve-cluster` job (multi-core runners)
additionally passes ``repro serve-bench --check-scaleout 1.5`` to make
the contract unconditional there.

Every served result is compared bit-exactly against the in-process
engine before any number is reported — a throughput win that changed
the answers would be a correctness bug.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClusterPreset:
    """One saturation scenario of the cluster tier."""

    name: str
    size: int
    kernel: int
    channels: int
    filters: int
    padding: int
    requests: int = 48
    request_batch: int = 1
    worker_counts: tuple = (1, 2, 4)
    slots: int = 16
    slot_bytes: int = 1 << 18
    #: Offered load as a multiple of the largest configuration's measured
    #: single-stream capacity — > 1 keeps every sweep point saturated.
    oversubscribe: float = 1.5
    #: Served-rps floor for 2 workers vs. 1, enforced when the host can
    #: physically scale (``gated``); None records without gating.
    min_scaleout: float | None = 1.5
    seed: int = 0
    heavy: bool = False  # skipped in --smoke runs


CLUSTER_PRESETS: tuple[ClusterPreset, ...] = (
    # The serve_batch8 shape: small per-request work, fixed cost
    # dominates — exactly the regime where a second worker process (own
    # GIL, own caches) should nearly double capacity on a 2-core box.
    ClusterPreset("cluster_batch8", size=8, kernel=3, channels=3,
                  filters=8, padding=1, requests=48,
                  worker_counts=(1, 2, 4), min_scaleout=1.5),
)


def poisson_arrivals(n: int, rate_rps: float,
                     rng: np.random.Generator) -> np.ndarray:
    """*n* arrival offsets (seconds) of a Poisson process at *rate_rps*."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=n))


def scaleout_gated() -> bool:
    """Whether the scale-out floor is physically meaningful here.

    Two worker processes cannot beat one by 1.5x on a single core — the
    engine's work is conserved — so single-core hosts record the curve
    without enforcing the floor.
    """
    return (os.cpu_count() or 1) >= 2


def _run_one_round(server, xs, weight, bias, padding: int,
                   arrivals: np.ndarray) -> tuple[float, np.ndarray, list]:
    """Offer *xs* on the arrival schedule; returns (span_s, lat_s, outs)."""
    n = len(xs)
    done_at = [0.0] * n
    futures: list[Future] = [None] * n

    start = time.monotonic()
    for i, x in enumerate(xs):
        delay = start + arrivals[i] - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        future = server.submit(x, weight, bias, padding=padding)

        def _stamp(f, i=i):
            done_at[i] = time.monotonic()

        future.add_done_callback(_stamp)
        futures[i] = future
    outs = [f.result(60) for f in futures]
    # result() can return a hair before the done-callback runs (waiters
    # are notified first); settle any unstamped entries.
    deadline = time.monotonic() + 1.0
    while any(d == 0.0 for d in done_at) and time.monotonic() < deadline:
        time.sleep(0.001)
    span_s = max(done_at) - start
    latency_s = np.array([done_at[i] - (start + arrivals[i])
                          for i in range(n)])
    return span_s, latency_s, outs


def run_cluster_case(preset: ClusterPreset, repeats: int = 2,
                     worker_counts: tuple | None = None) -> list[dict]:
    """Sweep the saturation bench over worker counts.

    Returns one report entry per worker count (names like
    ``cluster_batch8_w2``), each carrying served-rps, p50/p99 latency,
    the offered rate, the ``gated`` flag, and — for multi-worker points —
    the scale-out ratio against this run's single-worker point.
    """
    from repro.nn import functional as F
    from repro.serve.router import ClusterServer

    counts = tuple(worker_counts or preset.worker_counts)
    rng = np.random.default_rng(preset.seed)
    c, f, k = preset.channels, preset.filters, preset.kernel
    weight = rng.standard_normal((f, c, k, k))
    bias = rng.standard_normal(f)
    xs = [rng.standard_normal((preset.request_batch, c, preset.size,
                               preset.size))
          for _ in range(preset.requests)]
    refs = [F.conv2d(x, weight, bias, padding=preset.padding) for x in xs]

    # Calibrate the offered rate once from warm single-stream capacity,
    # so every sweep point sees the *same* saturating load.
    with ClusterServer(workers=1, slots=preset.slots,
                       slot_bytes=preset.slot_bytes) as server:
        server.conv2d(xs[0], weight, bias, padding=preset.padding,
                      timeout=60)
        t0 = time.perf_counter()
        probes = min(8, preset.requests)
        for x in xs[:probes]:
            server.conv2d(x, weight, bias, padding=preset.padding,
                          timeout=60)
        service_s = (time.perf_counter() - t0) / probes
    offered_rps = max(counts) * preset.oversubscribe / max(service_s, 1e-6)

    gated = scaleout_gated()
    entries = []
    base_rps = None
    for workers in counts:
        best = None
        for rep in range(max(repeats, 1)):
            arrivals = poisson_arrivals(
                preset.requests, offered_rps,
                np.random.default_rng(preset.seed + 1000 * rep))
            with ClusterServer(workers=workers, slots=preset.slots,
                               slot_bytes=preset.slot_bytes) as server:
                # Warm every replica's caches off the clock.
                for _ in range(2 * workers):
                    server.conv2d(xs[0], weight, bias,
                                  padding=preset.padding, timeout=60)
                span_s, latency_s, outs = _run_one_round(
                    server, xs, weight, bias, preset.padding, arrivals)
            for out, ref in zip(outs, refs):
                if not np.array_equal(out, ref):
                    raise AssertionError(
                        f"cluster result diverged from in-process conv2d "
                        f"on {preset.name} (workers={workers})")
            round_ = {
                "served_rps": preset.requests / span_s,
                "p50_ms": float(np.percentile(latency_s, 50)) * 1e3,
                "p99_ms": float(np.percentile(latency_s, 99)) * 1e3,
            }
            if best is None or round_["served_rps"] > best["served_rps"]:
                best = round_
        if workers == counts[0] and counts[0] == 1:
            base_rps = best["served_rps"]
        scaleout = None
        if base_rps and workers > 1:
            scaleout = round(best["served_rps"] / base_rps, 3)
        entries.append({
            "name": f"{preset.name}_w{workers}",
            "preset": preset.name,
            "workers": workers,
            "transport": "shm",
            "requests": preset.requests,
            "request_batch": preset.request_batch,
            "shape": {"size": preset.size, "kernel": preset.kernel,
                      "channels": preset.channels,
                      "filters": preset.filters,
                      "padding": preset.padding},
            "offered_rps": round(offered_rps, 1),
            "served_rps": round(best["served_rps"], 1),
            "p50_ms": round(best["p50_ms"], 3),
            "p99_ms": round(best["p99_ms"], 3),
            "scaleout_vs_1": scaleout,
            "min_scaleout": preset.min_scaleout if workers == 2 else None,
            "gated": gated,
            "exact": True,
        })
    return entries


# ---------------------------------------------------------------------------
# Overload sweep: offered load as a multiple of capacity, goodput gated.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadPreset:
    """One overload scenario of the batching serving tier.

    The sweep offers Poisson load at ``multipliers`` times the server's
    calibrated burst capacity and measures what a deadline-propagating,
    admission-bounded server actually *delivers*: goodput (completed
    requests per second of wall time), the shed/reject split, and the
    completed-request latency tail.  ``min_goodput_pct`` is the CI
    contract: at ``gate_multiplier`` times capacity the server must
    still deliver that fraction of its capacity as goodput — overload
    must cost the *excess*, not the throughput.
    """

    name: str
    size: int
    kernel: int
    channels: int
    filters: int
    padding: int
    requests: int = 96
    request_batch: int = 1
    max_batch: int = 8
    multipliers: tuple = (0.5, 1.0, 2.0, 3.0)
    #: Per-request deadline handed to ``submit(deadline_s=...)``.
    deadline_s: float = 2.0
    #: Admission budget of the swept server (well under ``requests`` so
    #: the high multipliers actually exercise rejection).
    max_inflight: int = 48
    shed_policy: str = "reject-new"
    #: Goodput floor as a fraction of calibrated capacity, enforced on
    #: the ``gate_multiplier`` point; None records without gating.
    min_goodput_pct: float | None = 0.85
    gate_multiplier: float = 2.0
    seed: int = 0
    heavy: bool = False  # skipped in --smoke runs


OVERLOAD_PRESETS: tuple[OverloadPreset, ...] = (
    # Same shape family as serve_batch8/cluster_batch8: small requests
    # whose value is in coalescing — under overload the queue is never
    # starved, so batches stay full and goodput should track capacity.
    OverloadPreset("overload_batch8", size=8, kernel=3, channels=3,
                   filters=8, padding=1),
)


def _calibrate_capacity(preset: OverloadPreset, xs, weight, bias) -> float:
    """Burst capacity (requests/s) of a warm, amply budgeted server."""
    from repro.serve.api import ConvServer
    from repro.serve.overload import ServeConfig

    config = ServeConfig(max_inflight=max(2 * preset.requests, 64))
    with ConvServer(max_batch=preset.max_batch, config=config) as server:
        for _ in range(2):
            server.conv2d(xs[0], weight, bias, padding=preset.padding,
                          timeout=60)
        t0 = time.perf_counter()
        futures = [server.submit(x, weight, bias, padding=preset.padding)
                   for x in xs]
        for future in futures:
            future.result(60)
        span = time.perf_counter() - t0
    return preset.requests / max(span, 1e-9)


def run_overload_case(preset: OverloadPreset,
                      multipliers: tuple | None = None) -> list[dict]:
    """Sweep offered load over ``multipliers`` x capacity.

    Returns one entry per multiplier (names like ``overload_batch8_x2``).
    Every completed result is checked bit-exactly against the in-process
    engine, and the outcome bookkeeping is asserted to be airtight:
    each offered request lands in exactly one of completed / shed /
    rejected (a future resolves exactly once, so a request reported shed
    can never also deliver a result), and nothing is lost.
    """
    from repro.nn import functional as F
    from repro.serve.api import ConvServer
    from repro.serve.overload import (
        DeadlineExceeded,
        Overloaded,
        ServeConfig,
    )

    multipliers = tuple(multipliers or preset.multipliers)
    rng = np.random.default_rng(preset.seed)
    c, f, k = preset.channels, preset.filters, preset.kernel
    weight = rng.standard_normal((f, c, k, k))
    bias = rng.standard_normal(f)
    xs = [rng.standard_normal((preset.request_batch, c, preset.size,
                               preset.size))
          for _ in range(preset.requests)]
    refs = [F.conv2d(x, weight, bias, padding=preset.padding) for x in xs]
    capacity_rps = _calibrate_capacity(preset, xs, weight, bias)

    config = ServeConfig(max_inflight=preset.max_inflight,
                         shed_policy=preset.shed_policy)
    entries = []
    for mult in multipliers:
        offered_rps = mult * capacity_rps
        arrivals = poisson_arrivals(
            preset.requests, offered_rps,
            np.random.default_rng(preset.seed + int(1000 * mult)))
        n = preset.requests
        futures: list[Future | None] = [None] * n
        done_at = [0.0] * n
        with ConvServer(max_batch=preset.max_batch,
                        config=config) as server:
            server.conv2d(xs[0], weight, bias, padding=preset.padding,
                          timeout=60)  # warm caches off the clock
            start = time.monotonic()
            for i, x in enumerate(xs):
                delay = start + arrivals[i] - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                try:
                    future = server.submit(
                        x, weight, bias, padding=preset.padding,
                        deadline_s=preset.deadline_s)
                except Overloaded:
                    continue  # rejected at the front door

                def _stamp(f, i=i):
                    done_at[i] = time.monotonic()

                future.add_done_callback(_stamp)
                futures[i] = future
            completed, shed, failed = [], 0, 0
            latencies = []
            for i, future in enumerate(futures):
                if future is None:
                    continue
                try:
                    out = future.result(60)
                except DeadlineExceeded:
                    shed += 1
                    continue
                except Exception:
                    failed += 1
                    continue
                completed.append(i)
                latencies.append(done_at[i] - (start + arrivals[i]))
        for i in completed:
            if not np.array_equal(futures[i].result(0), refs[i]):
                raise AssertionError(
                    f"overload sweep result diverged from in-process "
                    f"conv2d on {preset.name} (x{mult:g}, request {i})")
        rejected = sum(1 for f in futures if f is None)
        if failed:
            raise AssertionError(
                f"{failed} request(s) failed outright in the overload "
                f"sweep on {preset.name} (x{mult:g}) — sheds and rejects "
                f"are expected under overload, failures are not")
        if len(completed) + shed + rejected != n:
            raise AssertionError(
                "overload outcome bookkeeping lost a request: "
                f"{len(completed)} + {shed} + {rejected} != {n}")
        span_s = (max(done_at[i] for i in completed) - start) \
            if completed else 0.0
        goodput_rps = len(completed) / span_s if span_s > 0 else 0.0
        lat = np.array(latencies) if latencies else np.zeros(1)
        gate = abs(mult - preset.gate_multiplier) < 1e-9
        entries.append({
            "name": f"{preset.name}_x{mult:g}",
            "preset": preset.name,
            "multiplier": mult,
            "requests": n,
            "deadline_s": preset.deadline_s,
            "max_inflight": preset.max_inflight,
            "shed_policy": preset.shed_policy,
            "offered_rps": round(offered_rps, 1),
            "capacity_rps": round(capacity_rps, 1),
            "goodput_rps": round(goodput_rps, 1),
            "goodput_pct": round(goodput_rps / capacity_rps, 3)
            if capacity_rps else None,
            "completed": len(completed),
            "shed": shed,
            "rejected": rejected,
            "shed_rate": round((shed + rejected) / n, 3),
            "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
            "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
            "late_completions": int(sum(
                1 for v in latencies if v > preset.deadline_s)),
            "min_goodput_pct": preset.min_goodput_pct if gate else None,
            "exact": True,
        })
    return entries


def format_overload_report(entries: list[dict]) -> str:
    """Human-readable overload sweep table."""
    lines = [f"{'point':<22} {'offered':>9} {'goodput':>9} {'pct':>6} "
             f"{'done':>5} {'shed':>5} {'rej':>5} {'p50 ms':>8} "
             f"{'p99 ms':>8} {'floor':>6}"]
    for r in entries:
        floor = f"{r['min_goodput_pct']:.0%}" \
            if r.get("min_goodput_pct") else "-"
        pct = f"{r['goodput_pct']:.0%}" \
            if r.get("goodput_pct") is not None else "-"
        lines.append(
            f"{r['name']:<22} {r['offered_rps']:>9.0f} "
            f"{r['goodput_rps']:>9.0f} {pct:>6} {r['completed']:>5} "
            f"{r['shed']:>5} {r['rejected']:>5} {r['p50_ms']:>8.2f} "
            f"{r['p99_ms']:>8.2f} {floor:>6}")
    return "\n".join(lines)


def format_cluster_report(entries: list[dict]) -> str:
    """Human-readable scale-out table for cluster bench entries."""
    lines = [f"{'point':<24} {'workers':>7} {'offered':>9} {'served':>9} "
             f"{'p50 ms':>8} {'p99 ms':>8} {'scaleout':>9} {'gated':>6}"]
    for r in entries:
        scaleout = f"{r['scaleout_vs_1']:8.2f}x" \
            if r.get("scaleout_vs_1") is not None else f"{'-':>9}"
        lines.append(
            f"{r['name']:<24} {r['workers']:>7} {r['offered_rps']:>9.0f} "
            f"{r['served_rps']:>9.0f} {r['p50_ms']:>8.2f} "
            f"{r['p99_ms']:>8.2f} {scaleout} "
            f"{'yes' if r['gated'] else 'no':>6}")
    return "\n".join(lines)
