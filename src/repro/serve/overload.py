"""Overload control: typed errors, deadlines, admission, and timeouts.

The serving tier before this module had exactly one overload behavior:
queues grew.  A burst beyond capacity piled requests into the
:class:`~repro.serve.queue.BatchingQueue` without bound, a client that
timed out on ``future.result`` merely stopped *watching* the work (the
engine still ran it), and a stalled worker pinned its arena slots until
``slot_timeout_s`` starved every other dispatch.  This module is the
shared vocabulary the fixed tier speaks:

- **Typed errors** — :class:`DeadlineExceeded` (the request's deadline
  passed before the engine ran it; subclasses :class:`TimeoutError` so
  existing ``except TimeoutError`` callers keep working) and
  :class:`Overloaded` (admission control refused or evicted the request
  under load).  ``SlotTimeout`` lives in :mod:`repro.serve.shm` next to
  the allocator it types.
- **Deadline propagation** — a request's absolute deadline
  (``time.monotonic()`` clock, comparable across processes on one host:
  POSIX ``CLOCK_MONOTONIC`` is boot-based and system-wide) rides the
  :class:`~repro.serve.coalescer.ConvRequest` from the front door
  through every stage; each stage calls :func:`shed_expired` so dead
  work is resolved, never executed.
- **Admission control** — :class:`InflightBudget` bounds in-flight
  requests per server; the ``reject-new`` policy raises
  :class:`Overloaded` at the door, ``shed-oldest`` evicts the oldest
  queued request instead.
- **Outcome accounting** — :func:`attach_accounting` observes every
  admitted future exactly once and lands it in exactly one of
  ``serve.completed`` / ``serve.shed`` / ``serve.failed``; together with
  ``serve.rejected`` (counted at the door, no future exists) the four
  counters partition ``serve.requests``.
- **ServeConfig** — every previously hardcoded router timeout plus the
  watchdog/backoff/admission knobs, as a frozen
  :class:`~repro.guard.state.GuardConfig`-style dataclass with
  ``REPRO_SERVE_*`` environment overrides and eager validation.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, fields, replace

from repro.observe.registry import counters

#: Admission policies :class:`ServeConfig` accepts.
SHED_POLICIES = ("reject-new", "shed-oldest")

#: Environment-variable prefix for every :class:`ServeConfig` field.
ENV_PREFIX = "REPRO_SERVE_"


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed before (or while) it was served.

    Raised from ``future.result()`` when any serving stage shed the
    request, and by the synchronous ``conv2d(timeout=...)`` wrappers
    after they cancel a timed-out future.  Subclasses
    :class:`TimeoutError`, so callers catching the builtin keep working.
    """


class Overloaded(RuntimeError):
    """Admission control refused (or evicted) the request under load.

    ``reject-new`` raises it synchronously from ``submit``; under
    ``shed-oldest`` the *evicted* request's future carries it instead.
    """


@dataclass(frozen=True)
class ServeConfig:
    """Validated knobs of the serving tier's overload/liveness machinery.

    Defaults preserve the pre-config behavior (the router's previously
    hardcoded ``10.0`` / ``0.2`` / ``2.0`` second timeouts).  Every field
    can be overridden by ``REPRO_SERVE_<FIELD_NAME_UPPERCASED>`` (see
    :meth:`from_env`); invalid values raise :class:`ValueError` naming
    the offending knob instead of silently falling back.
    """

    #: Post-respawn health-probe wait before a replica takes traffic.
    ping_timeout_s: float = 10.0
    #: Supervisor poll interval between respawn scans.
    respawn_poll_s: float = 0.2
    #: Per-stage process.join() wait during ``ClusterServer.close``.
    join_timeout_s: float = 2.0
    #: Router watchdog scan interval.
    watchdog_interval_s: float = 0.5
    #: A replica with in-flight work whose heartbeat (and oldest
    #: dispatch) is older than this is quarantined: SIGKILL + respawn.
    #: Must exceed the worst-case service time of one dispatch.
    stall_timeout_s: float = 10.0
    #: First retry's backoff delay; doubles per attempt.
    backoff_base_s: float = 0.05
    #: Ceiling on any single backoff delay (after jitter).
    backoff_cap_s: float = 2.0
    #: In-flight request budget per server (admission control).
    max_inflight: int = 256
    #: What happens at the budget: "reject-new" or "shed-oldest".
    shed_policy: str = "reject-new"

    def __post_init__(self) -> None:
        for name in ("ping_timeout_s", "respawn_poll_s", "join_timeout_s",
                     "watchdog_interval_s", "stall_timeout_s",
                     "backoff_base_s", "backoff_cap_s"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"{name} must be a positive number, got {value!r}")
        if not isinstance(self.max_inflight, int) or self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be an int >= 1, got "
                f"{self.max_inflight!r}")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {list(SHED_POLICIES)}, got "
                f"{self.shed_policy!r}")

    def with_(self, **overrides) -> "ServeConfig":
        """A copy with *overrides* applied (validated like __init__)."""
        return replace(self, **overrides)

    @classmethod
    def from_env(cls, env: dict | None = None) -> "ServeConfig":
        """Defaults overridden by ``REPRO_SERVE_<FIELD>`` variables.

        A malformed value (``REPRO_SERVE_STALL_TIMEOUT_S=soon``) raises
        :class:`ValueError` naming the variable — a misconfigured
        production knob must fail loudly at server construction, not
        quietly revert to a default nobody chose.
        """
        env = os.environ if env is None else env
        overrides = {}
        for field_ in fields(cls):
            raw = env.get(ENV_PREFIX + field_.name.upper())
            if raw is None or raw == "":
                continue
            if field_.name == "shed_policy":
                overrides[field_.name] = raw
                continue
            caster = int if field_.type == "int" else float
            try:
                overrides[field_.name] = caster(raw)
            except ValueError:
                raise ValueError(
                    f"{ENV_PREFIX}{field_.name.upper()}={raw!r} is not a "
                    f"valid {caster.__name__}") from None
        return cls(**overrides)


def resolve_deadline(deadline_s: float | None,
                     now: float | None = None) -> float | None:
    """Relative front-door timeout -> absolute monotonic deadline."""
    if deadline_s is None:
        return None
    deadline_s = float(deadline_s)
    if deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive, got {deadline_s!r}")
    return (time.monotonic() if now is None else now) + deadline_s


def shed_request(request, exc: BaseException) -> bool:
    """Resolve one request's future with *exc*; False if already done.

    Tolerates racing resolvers (engine completion, client-side cancel):
    the first resolution wins and the rest are no-ops, which is exactly
    the "no request ever completes after it was reported shed" contract
    — a future is shed *or* completed, never both.
    """
    future = request.future
    if future.done():
        return False
    try:
        future.set_exception(exc)
    except InvalidStateError:  # lost the race to cancel()/set_result()
        return False
    return True


def shed_expired(batch: list, now: float | None = None) -> list:
    """Partition *batch* into live requests (returned) and dead ones.

    A request is dead when its future is already resolved/cancelled (a
    timed-out sync caller cancelled it) or its deadline has passed; dead
    requests are shed with :class:`DeadlineExceeded` and never reach the
    engine.  Every dispatch stage calls this immediately before
    executing, so a batch that waited out its riders' deadlines in the
    queue prunes them at dispatch time.
    """
    now = time.monotonic() if now is None else now
    live = []
    for request in batch:
        if request.future.done():
            continue  # cancelled (or resolved) while queued
        deadline = getattr(request, "deadline", None)
        if deadline is not None and now >= deadline:
            shed_request(request, DeadlineExceeded(
                f"request deadline exceeded {(now - deadline) * 1e3:.1f}ms "
                f"before execution (queued "
                f"{(now - request.enqueued_at) * 1e3:.1f}ms)"))
            continue
        live.append(request)
    return live


def batch_deadline(batch: list) -> float | None:
    """The latest rider deadline (None if any rider is deadline-free).

    A coalesced dispatch must execute while *any* rider can still use
    the answer, so the batch-level deadline a worker may shed against is
    the maximum — and an unbounded rider makes the batch unbounded.
    """
    deadline = None
    for request in batch:
        if request.deadline is None:
            return None
        deadline = request.deadline if deadline is None \
            else max(deadline, request.deadline)
    return deadline


def attach_accounting(future: Future) -> None:
    """Land *future* in exactly one outcome counter when it resolves.

    ``serve.completed`` for a result, ``serve.shed`` (tagged by reason)
    for deadline/eviction/cancellation, ``serve.failed`` for any other
    exception.  Centralizing the bookkeeping on the done-callback — which
    fires exactly once per future — is what makes the invariant
    ``completed + shed + failed + rejected == submitted`` hold under any
    interleaving of shedding stages.
    """
    future.add_done_callback(_account_outcome)


def _account_outcome(future: Future) -> None:
    if future.cancelled():
        counters.add("serve.shed", reason="cancelled")
        return
    exc = future.exception()
    if exc is None:
        counters.add("serve.completed")
    elif isinstance(exc, DeadlineExceeded):
        counters.add("serve.shed", reason="deadline")
    elif isinstance(exc, Overloaded):
        counters.add("serve.shed", reason="capacity")
    else:
        counters.add("serve.failed")


def backoff_delay(attempt: int, base_s: float, cap_s: float,
                  token: object = None) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``base * 2**(attempt-1)``, up to half again as long under jitter
    derived from ``hash(token)`` — deterministic for a given (token,
    attempt) pair so retry schedules are reproducible in tests — and
    clamped to *cap_s*.  ``attempt`` counts from 1 (the first retry).
    """
    if attempt < 1:
        return 0.0
    delay = base_s * (2.0 ** (attempt - 1))
    jitter = (hash((token, attempt)) % 997) / 997.0
    return min(delay * (1.0 + 0.5 * jitter), cap_s)


class InflightBudget:
    """Bounded in-flight accounting for one server's admission control.

    ``try_acquire`` claims a unit (False at the cap); the unit is
    returned automatically when the future it was attached to resolves.
    Lock-free would be nicer but admission sits on the submit path where
    a plain lock costs nanoseconds against a convolution.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit!r}")
        self.limit = int(limit)
        self._count = 0
        import threading

        self._lock = threading.Lock()

    def inflight(self) -> int:
        with self._lock:
            return self._count

    def try_acquire(self) -> bool:
        with self._lock:
            if self._count >= self.limit:
                return False
            self._count += 1
            return True

    def _release(self, _future) -> None:
        with self._lock:
            self._count -= 1

    def attach(self, future: Future) -> None:
        """Return this unit when *future* resolves (exactly once)."""
        future.add_done_callback(self._release)
