"""The user-facing serving object and the process-wide default server.

:class:`ConvServer` composes the batching queue and the worker pool into
one front door:

- ``submit(...)`` returns a ``concurrent.futures.Future`` immediately;
- requests whose own batch fits under ``max_batch`` wait (at most
  ``max_wait_ms``) in the :class:`~repro.serve.queue.BatchingQueue` for
  compatible companions and ride one stacked engine call;
- oversized requests bypass the queue entirely and are sharded across
  the persistent :class:`~repro.serve.pool.WorkerPool` along the batch
  and group axes;
- ``conv2d(...)`` is the synchronous convenience wrapper.

A lazily created default server backs
:func:`repro.nn.functional.conv2d_async` and ``Conv2d.submit``; its knobs
come from ``REPRO_SERVE_WORKERS``, ``REPRO_SERVE_MAX_BATCH`` and
``REPRO_SERVE_MAX_WAIT_MS``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from repro.observe.registry import counters
from repro.serve.coalescer import (
    ConvRequest,
    make_request,
    split_result,
    stack_requests,
)
from repro.serve.overload import (
    DeadlineExceeded,
    InflightBudget,
    Overloaded,
    ServeConfig,
    attach_accounting,
    resolve_deadline,
)
from repro.serve.pool import WorkerPool, execute_conv
from repro.serve.queue import BatchingQueue

DEFAULT_MAX_BATCH = 8
DEFAULT_MAX_WAIT_MS = 2.0


class ConvServer:
    """Async dynamic-batching front door to the convolution engine.

    Admission is bounded: at most ``config.max_inflight`` requests may be
    in flight; past the budget the configured ``shed_policy`` either
    rejects the newcomer with :class:`~repro.serve.overload.Overloaded`
    (``reject-new``, the default) or evicts the oldest queued request in
    its favor (``shed-oldest``).  Per-request deadlines (``deadline_s``)
    propagate to every dispatch stage, which sheds expired work instead
    of executing it.
    """

    def __init__(self, max_batch: int = DEFAULT_MAX_BATCH,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 workers: int | None = None, mode: str = "thread",
                 config: ServeConfig | None = None):
        self.max_batch = int(max_batch)
        self.config = config if config is not None \
            else ServeConfig.from_env()
        self._budget = InflightBudget(self.config.max_inflight)
        self._pool = WorkerPool(workers=workers, mode=mode)
        self._queue = BatchingQueue(self._execute_batch,
                                    max_batch=max_batch,
                                    max_wait_ms=max_wait_ms)
        self._closed = False

    # -- request intake ------------------------------------------------------

    def _admit(self, request: ConvRequest) -> None:
        """Claim an in-flight unit for *request* or raise Overloaded.

        Under ``shed-oldest``, a full budget first evicts the oldest
        queued request (its future carries
        :class:`~repro.serve.overload.Overloaded`), which frees a unit
        for the newcomer; when nothing is queued — every in-flight
        request is already executing — the newcomer is rejected after
        all.  ``serve.rejected`` counts front-door rejections;
        evictions land in ``serve.shed`` via the outcome accounting.
        """
        while not self._budget.try_acquire():
            if self.config.shed_policy != "shed-oldest" \
                    or self._queue.shed_oldest() is None:
                counters.add("serve.rejected")
                raise Overloaded(
                    f"server is at its in-flight budget "
                    f"({self.config.max_inflight}); request rejected "
                    f"({self.config.shed_policy})")
        attach_accounting(request.future)
        self._budget.attach(request.future)

    def submit(self, x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None,
               padding: int | tuple | str = 0, stride: int | tuple = 1,
               dilation: int | tuple = 1, groups: int = 1,
               algorithm: str = "polyhankel", strategy: str = "sum",
               backend: str | None = None, op: str = "conv2d",
               output_padding: int | tuple = 0,
               deadline_s: float | None = None) -> Future:
        """Enqueue one convolution; returns its future immediately.

        *op* selects the operator family (``conv1d``/``conv2d``/
        ``conv3d``/``conv_transpose2d``).  For the 4-D ops a 3-D input is
        treated as a single CHW image (batch of one); a 1-D op's 3-D
        input is already the batched NCL layout.

        *deadline_s* bounds the request's whole lifetime: once that many
        seconds pass, any stage still holding the request sheds it and
        the future raises :class:`~repro.serve.overload.DeadlineExceeded`
        instead of executing stale work.  Raises
        :class:`~repro.serve.overload.Overloaded` when admission control
        refuses the request.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        op = str(getattr(op, "value", op))
        if getattr(x, "ndim", None) == 3 and op in ("conv2d",
                                                    "conv_transpose2d"):
            x = np.asarray(x, dtype=float)[None]
        request = make_request(x, weight, bias, padding, stride, dilation,
                               groups, algorithm, strategy, backend,
                               op, output_padding,
                               deadline=resolve_deadline(deadline_s))
        counters.add("serve.requests")
        self._admit(request)
        if request.batch > self.max_batch:
            # Oversized: no companion could ride along anyway — shard it
            # across the pool instead of clogging the queue.
            self._pool.resolve(request)
        else:
            self._queue.submit(request)
        return request.future

    def conv2d(self, x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None,
               padding: int | tuple | str = 0, stride: int | tuple = 1,
               dilation: int | tuple = 1, groups: int = 1,
               algorithm: str = "polyhankel", strategy: str = "sum",
               backend: str | None = None,
               timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`.

        *timeout* doubles as the request's deadline: a sync caller that
        stops waiting has no use for a late answer, so the timed-out
        future is **cancelled** — any stage that has not started the work
        sheds it, a stage mid-execution discards the result — and the
        call raises :class:`~repro.serve.overload.DeadlineExceeded`.
        The pre-fix behavior (abandon the future, let the engine run
        dead work to completion) leaked exactly the capacity an
        overloaded server needs back.
        """
        future = self.submit(x, weight, bias, padding, stride, dilation,
                             groups, algorithm, strategy, backend,
                             deadline_s=timeout)
        try:
            return future.result(timeout)
        except DeadlineExceeded:
            # The serving tier shed the request; its typed error already
            # carries the stage detail.  (Ordering matters: on 3.11+
            # DeadlineExceeded IS a futures TimeoutError.)
            raise
        except FutureTimeoutError:
            future.cancel()
            raise DeadlineExceeded(
                f"conv2d timed out after {timeout:g}s; request "
                f"cancelled") from None

    # -- dispatch ------------------------------------------------------------

    def _execute_batch(self, batch: list[ConvRequest]) -> None:
        """Run one coalesced batch and resolve every rider's future."""
        first = batch[0]
        key = first.key
        if len(batch) == 1 and self._pool.workers > 1:
            # Nothing to split off the stacked call; let the pool decide
            # whether shards help this lone request.
            self._pool.resolve(first)
            return
        stacked = stack_requests(batch)
        out = execute_conv(
            stacked, first.weight, first.bias, padding=key.padding,
            stride=key.stride, dilation=key.dilation, groups=key.groups,
            algorithm=key.algorithm, strategy=key.strategy,
            backend=key.backend, op=key.op,
            output_padding=key.output_padding, breaker_key=key)
        for request, result in zip(batch, split_result(out, batch)):
            try:
                request.future.set_result(result)
            except InvalidStateError:
                pass  # cancelled mid-execution; result is discarded

    # -- introspection and lifecycle ----------------------------------------

    def stats(self) -> dict:
        """Serving counters from the unified registry (process-wide)."""
        from repro.observe.registry import serve_stats

        return serve_stats()

    def pending_count(self) -> int:
        return self._queue.pending_count()

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain the queue, stop the dispatcher, shut the pool down."""
        if self._closed:
            return
        self._closed = True
        self._queue.close(timeout)
        self._pool.close()
        # Persist the learned selection table (no-op unless a table path
        # is configured) so the next server warm-starts from measurement.
        from repro.selection.bandit import active_bandit

        bandit = active_bandit()
        if bandit is not None:
            bandit.save()

    def __enter__(self) -> "ConvServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Process-wide default server.
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_DEFAULT: list[ConvServer | None] = [None]


def _env_float(name: str, fallback: float) -> float:
    value = os.environ.get(name)
    try:
        return float(value) if value else fallback
    except ValueError:
        return fallback


def get_server() -> ConvServer:
    """The lazily created process-wide default server."""
    with _default_lock:
        server = _DEFAULT[0]
        if server is None or server._closed:
            server = ConvServer(
                max_batch=int(_env_float("REPRO_SERVE_MAX_BATCH",
                                         DEFAULT_MAX_BATCH)),
                max_wait_ms=_env_float("REPRO_SERVE_MAX_WAIT_MS",
                                       DEFAULT_MAX_WAIT_MS),
            )
            _DEFAULT[0] = server
        return server


def set_server(server: ConvServer | None) -> ConvServer | None:
    """Swap the default server; returns the previous one (not closed)."""
    with _default_lock:
        previous, _DEFAULT[0] = _DEFAULT[0], server
    return previous


def configure_server(**kwargs) -> ConvServer:
    """Replace the default server with a freshly configured one."""
    server = ConvServer(**kwargs)
    previous = set_server(server)
    if previous is not None:
        previous.close()
    return server


def shutdown_server() -> None:
    """Close and drop the default server (tests, clean interpreter exit)."""
    previous = set_server(None)
    if previous is not None:
        previous.close()
