"""Front-end router of the multi-process cluster tier.

:class:`ClusterServer` is the scale-out sibling of
:class:`~repro.serve.api.ConvServer`: the same ``submit`` front door and
coalescing machinery, but execution happens on N worker *replicas* — OS
processes that each own warm plan/spectrum caches — with tensors moving
through the shared-memory slot arena (:mod:`repro.serve.shm`) instead of
pickle.

Routing is **affinity by coalescing key**: a key's home replica is a
stable hash over the live replica set, so repeated requests of one
family land where that family's weight spectrum and plan are already
warm; the router spills to the least-loaded replica when the home is
more than ``imbalance_limit`` dispatches deeper than the best
alternative.  Per-replica health rides the guard's
:class:`~repro.guard.breaker.CircuitBreaker` under key
``("replica", id)``: a transport failure opens the breaker, routing
steers around the replica, and the supervisor thread respawns it and
closes the breaker once the fresh process answers a ping.

Failure semantics: every dispatch's request/response slots stay held
until its futures resolve, so when a replica dies mid-load the router
re-sends the *same* generation-stamped slots to a surviving replica —
no request is lost, and because a future resolves exactly once no
request is duplicated (re-executing the pure convolution is idempotent;
only the first completion lands).

Everything lands in the unified observe registry: router-side events are
tagged ``replica=<id>`` and each worker's own counters are delta-merged
under ``proc="replica<id>"`` (see
:meth:`repro.observe.registry.CounterRegistry.merge_rows`), so
``repro serve-stats``'s per-replica table and ``ClusterServer.stats()``
read one source of truth.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from repro.guard import faults
from repro.guard.breaker import CircuitBreaker
from repro.guard.state import guard_enabled
from repro.observe.registry import counters
from repro.serve.cluster import get_cluster_context, spawn_worker
from repro.serve.coalescer import (
    CoalesceKey,
    ConvRequest,
    make_request,
    split_result,
    stack_requests,
)
from repro.serve.overload import (
    DeadlineExceeded,
    InflightBudget,
    Overloaded,
    ServeConfig,
    attach_accounting,
    backoff_delay,
    batch_deadline,
    resolve_deadline,
    shed_expired,
    shed_request,
)
from repro.serve.queue import BatchingQueue
from repro.serve.shm import (
    SlotAllocator,
    SlotTimeout,
    TensorArena,
    send_control,
)

DEFAULT_SLOTS = 32
DEFAULT_SLOT_BYTES = 1 << 20


class ClusterUnavailableError(RuntimeError):
    """No live replica could take the dispatch (all dead or excluded)."""


class _Dispatch:
    """One routed unit: a coalesced batch pinned to its arena slots."""

    __slots__ = ("requests", "key", "stacked", "in_slot", "in_seq",
                 "out_slot", "attempts", "sent_at")

    def __init__(self, requests: list[ConvRequest], stacked: np.ndarray):
        self.requests = requests
        self.key: CoalesceKey = requests[0].key
        self.stacked = stacked
        self.in_slot: int | None = None
        self.in_seq: int | None = None
        self.out_slot: int | None = None
        self.attempts = 0
        #: monotonic time of the most recent send (watchdog aging).
        self.sent_at: float | None = None

    @property
    def rows(self) -> int:
        return int(self.stacked.shape[0])

    def fail(self, exc: BaseException) -> None:
        for request in self.requests:
            if not request.future.done():
                request.future.set_exception(exc)


class _Replica:
    """Router-side state of one worker process."""

    __slots__ = ("id", "process", "conn", "send_lock", "reader",
                 "inflight", "shipped", "pending_tensor_slots", "alive",
                 "served", "generation", "started_at")

    def __init__(self, replica_id: int):
        self.id = replica_id
        self.process = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.reader: threading.Thread | None = None
        #: req_id -> _Dispatch sent to this replica and not yet answered.
        self.inflight: dict[int, _Dispatch] = {}
        #: Tensor fingerprints this replica has cached.
        self.shipped: set = set()
        #: Arena slots lent out for in-flight weight shipments.
        self.pending_tensor_slots: dict[int, int] = {}
        self.alive = False
        self.served = 0
        #: Spawn counter; heartbeats carry it so a predecessor's stale
        #: stamp never vouches for the current process.
        self.generation = 0
        self.started_at = 0.0

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None


class ClusterServer:
    """Multi-process serving tier with shared-memory tensor transport."""

    def __init__(self, workers: int | None = None, *,
                 slots: int = DEFAULT_SLOTS,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 max_batch: int = 1, max_wait_ms: float = 2.0,
                 supervised: bool | None = None,
                 start_method: str | None = None,
                 max_retries: int = 2, breaker_ttl_s: float = 30.0,
                 imbalance_limit: int = 2,
                 slot_timeout_s: float = 30.0,
                 config: ServeConfig | None = None):
        from repro.serve.pool import default_workers

        self.workers = int(workers) if workers else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if slots < 4:
            raise ValueError("slots must be >= 4 (a dispatch pins a "
                             "request and a response slot, plus weight "
                             "shipments)")
        self.max_batch = int(max_batch)
        self.max_retries = int(max_retries)
        self.breaker_ttl_s = float(breaker_ttl_s)
        self.imbalance_limit = int(imbalance_limit)
        self.slot_timeout_s = float(slot_timeout_s)
        self.config = config if config is not None \
            else ServeConfig.from_env()
        self._budget = InflightBudget(self.config.max_inflight)
        self._supervised = guard_enabled() if supervised is None \
            else bool(supervised)
        self._ctx = get_cluster_context(start_method)
        # One heartbeat slot per replica rides at the end of the arena.
        self._arena = TensorArena(slots=slots, slot_bytes=slot_bytes,
                                  heartbeats=self.workers)
        # One slot stays reserved for weight shipments: dispatch pairs
        # are held until completion, and a full arena would otherwise
        # deadlock a reroute that must ship the weight to a fresh
        # replica before any pinned dispatch can finish.
        self._alloc = SlotAllocator(self._arena, reserved=1)
        self._lock = threading.RLock()
        self._drained = threading.Condition(self._lock)
        self._req_ids = itertools.count(1)
        self._stats_events: dict[int, threading.Event] = {}
        self._ping_events: dict[int, threading.Event] = {}
        self._fault_events: dict[int, threading.Event] = {}
        self._fault_errors: dict[int, str] = {}
        self._token_ids = itertools.count(1)
        self._closed = False
        self._respawn_wanted = threading.Event()
        self._watchdog_stop = threading.Event()
        self._replicas: dict[int, _Replica] = {}
        self._breaker = CircuitBreaker()
        for i in range(self.workers):
            replica = _Replica(i)
            self._replicas[i] = replica
            self._start_replica(replica)
        self._queue = None
        if self.max_batch > 1:
            self._queue = BatchingQueue(self._execute_batch,
                                        max_batch=self.max_batch,
                                        max_wait_ms=max_wait_ms)
        self._supervisor = threading.Thread(
            target=self._supervise, name="cluster-supervisor", daemon=True)
        self._supervisor.start()
        self._watchdog = threading.Thread(
            target=self._watch, name="cluster-watchdog", daemon=True)
        self._watchdog.start()

    # -- replica lifecycle ---------------------------------------------------

    def _start_replica(self, replica: _Replica) -> None:
        # The swap happens under send_lock so a concurrent sender either
        # sees the old incarnation whole (and its failure reroutes) or
        # the new one whole — never a fresh conn paired with the old
        # ``shipped`` set, which would skip a weight the new process
        # doesn't have.
        with replica.send_lock:
            replica.generation += 1
            process, conn = spawn_worker(replica.id, self._arena,
                                         self._supervised, self._ctx,
                                         generation=replica.generation)
            replica.process = process
            replica.conn = conn
            replica.shipped = set()
            replica.pending_tensor_slots = {}
            replica.started_at = time.monotonic()
            replica.alive = True
            generation = replica.generation
        replica.reader = threading.Thread(
            target=self._reader, args=(replica, conn, generation),
            name=f"cluster-reader-{replica.id}", daemon=True)
        replica.reader.start()

    def _supervise(self) -> None:
        """Respawn dead replicas until the server closes."""
        while not self._closed:
            self._respawn_wanted.wait(timeout=self.config.respawn_poll_s)
            self._respawn_wanted.clear()
            if self._closed:
                return
            with self._lock:
                dead = [r for r in self._replicas.values() if not r.alive]
            for replica in dead:
                if self._closed:
                    return
                try:
                    self._start_replica(replica)
                except Exception:  # pragma: no cover - spawn failure
                    continue
                counters.add("serve.cluster.respawns",
                             replica=replica.id)
                # The breaker stays open until the fresh process answers
                # a ping — a replica that dies during startup never
                # takes traffic.
                if self._ping(replica, timeout=self.config.ping_timeout_s):
                    self._breaker.record_success(("replica", replica.id))

    def _watch(self) -> None:
        """Quarantine stalled-but-alive replicas (liveness watchdog).

        A replica is *stalled* when all three hold: it has in-flight
        work, its oldest dispatch has aged past ``stall_timeout_s``, and
        its heartbeat (or, for a stamp from an earlier generation, its
        spawn time) is older than ``stall_timeout_s``.  The triple rule
        keeps every benign case out: idle workers have no in-flight
        work, busy-but-healthy workers heartbeat between orders, and a
        single long-running order ages the dispatch but the conjunction
        with the heartbeat means only a worker that stopped *processing*
        — not one that is merely slow to answer one order — draws the
        kill.  (A worker stays silent through a multi-second convolution
        too; ``stall_timeout_s`` must exceed the longest legitimate
        order, exactly like any liveness timeout.)

        Quarantine is SIGKILL: the process may be SIGSTOP'd or wedged in
        C code where no cooperative shutdown can reach, and SIGKILL is
        delivered even to stopped processes.  The pipe EOF then drives
        the normal death path — preserved slots reroute to a surviving
        replica, the supervisor respawns a fresh generation.
        """
        while not self._watchdog_stop.wait(self.config.watchdog_interval_s):
            if self._closed:
                return
            now = time.monotonic()
            with self._lock:
                stalled = [r for r in self._replicas.values()
                           if self._is_stalled(r, now)]
            for replica in stalled:
                self._quarantine(replica)

    def _is_stalled(self, replica: _Replica, now: float) -> bool:
        """Stall predicate; caller holds the router lock."""
        if not replica.alive or not replica.inflight:
            return False
        oldest = min((d.sent_at for d in replica.inflight.values()
                      if d.sent_at is not None), default=None)
        if oldest is None or now - oldest <= self.config.stall_timeout_s:
            return False
        try:
            hb = self._arena.read_heartbeat(replica.id)
        except Exception:  # pragma: no cover - arena torn down
            return False
        if int(hb["generation"]) == replica.generation and hb["stamp"] > 0:
            # Stale stamp + old in-flight work = wedged.  (The stamp
            # alone is deliberately NOT compared against the order's
            # send time: an order queued behind earlier orders sees the
            # stamp advance legitimately, so that shortcut would kill
            # healthy replicas under queueing.  A worker whose reply
            # path wedged keeps beating while busy but goes silent once
            # its pipe drains — the stale-stamp rule catches it then.)
            age = now - float(hb["stamp"])
        else:
            # No stamp from this spawn yet: age from process start so a
            # worker wedged before its first beat is still caught.
            age = now - replica.started_at
        return age > self.config.stall_timeout_s

    def _quarantine(self, replica: _Replica) -> None:
        """SIGKILL a stalled replica; the reader's EOF does the rest."""
        counters.add("serve.cluster.stalls", replica=replica.id)
        self._breaker.record_failure(("replica", replica.id),
                                     threshold=1, ttl_s=self.breaker_ttl_s)
        pid = replica.pid
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass  # already gone; EOF path will run regardless

    def _ping(self, replica: _Replica,
              timeout: float | None = None) -> bool:
        timeout = self.config.ping_timeout_s if timeout is None \
            else timeout
        token = next(self._token_ids)
        event = threading.Event()
        self._ping_events[token] = event
        try:
            with replica.send_lock:
                send_control(replica.conn, {"kind": "ping",
                                            "token": token})
        except (OSError, ValueError):
            self._ping_events.pop(token, None)
            return False
        ok = event.wait(timeout)
        self._ping_events.pop(token, None)
        return ok

    def _on_replica_death(self, replica: _Replica,
                          generation: int | None = None) -> None:
        """Reroute a dead replica's in-flight work and queue a respawn.

        *generation* scopes the declaration to one incarnation: a reader
        EOF or send failure on the old pipe that lands after the
        supervisor already respawned the replica must not take down the
        fresh process it knows nothing about.
        """
        with self._lock:
            if not replica.alive:
                return
            if generation is not None \
                    and generation != replica.generation:
                return
            replica.alive = False
            process = replica.process
            pending = list(replica.inflight.values())
            replica.inflight.clear()
            tensor_slots = list(replica.pending_tensor_slots.values())
            replica.pending_tensor_slots = {}
        # Death is authoritative: routing now ignores this incarnation,
        # so a process that somehow survived its broken transport would
        # leak.  SIGKILL is idempotent on the (usual) already-dead case.
        if process is not None and process.is_alive():
            try:
                process.kill()
            except Exception:  # pragma: no cover - reaped concurrently
                pass
        if self._closed:
            for dispatch in pending:
                dispatch.fail(ClusterUnavailableError(
                    "cluster server closed while request was in flight"))
                self._release_dispatch_slots(dispatch)
            if tensor_slots:
                self._alloc.release(*tensor_slots)
            self._notify_drained()
            return
        counters.add("serve.cluster.worker_deaths", replica=replica.id)
        self._breaker.record_failure(("replica", replica.id),
                                     threshold=1, ttl_s=self.breaker_ttl_s)
        if tensor_slots:
            self._alloc.release(*tensor_slots)
        for dispatch in pending:
            dispatch.attempts += 1
            self._route(dispatch, exclude=frozenset({replica.id}))
        self._respawn_wanted.set()

    # -- request intake ------------------------------------------------------

    def _admit(self, request: ConvRequest) -> None:
        """Claim an in-flight unit for *request* or raise Overloaded.

        Mirrors :meth:`ConvServer._admit`: ``shed-oldest`` evicts the
        oldest *queued* request to make room (only meaningful when
        batching is on — with ``max_batch=1`` nothing queues, so the
        policy degrades to ``reject-new``).
        """
        while not self._budget.try_acquire():
            if self.config.shed_policy != "shed-oldest" \
                    or self._queue is None \
                    or self._queue.shed_oldest() is None:
                counters.add("serve.rejected")
                raise Overloaded(
                    f"cluster server is at its in-flight budget "
                    f"({self.config.max_inflight}); request rejected "
                    f"({self.config.shed_policy})")
        attach_accounting(request.future)
        self._budget.attach(request.future)

    def submit(self, x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None,
               padding: int | tuple | str = 0, stride: int | tuple = 1,
               dilation: int | tuple = 1, groups: int = 1,
               algorithm: str = "polyhankel", strategy: str = "sum",
               backend: str | None = None, op: str = "conv2d",
               output_padding: int | tuple = 0,
               deadline_s: float | None = None) -> Future:
        """Enqueue one convolution on the cluster; returns its future.

        *deadline_s* propagates to every stage — queue, router, and the
        worker process itself sheds the order when the deadline passes
        before execution (the future raises
        :class:`~repro.serve.overload.DeadlineExceeded`).  Raises
        :class:`~repro.serve.overload.Overloaded` when admission control
        refuses the request.
        """
        if self._closed:
            raise RuntimeError("cluster server is closed")
        op = str(getattr(op, "value", op))
        if getattr(x, "ndim", None) == 3 and op in ("conv2d",
                                                    "conv_transpose2d"):
            x = np.asarray(x, dtype=float)[None]
        request = make_request(x, weight, bias, padding, stride, dilation,
                               groups, algorithm, strategy, backend,
                               op, output_padding,
                               deadline=resolve_deadline(deadline_s))
        counters.add("serve.requests")
        counters.add("serve.cluster.requests")
        self._admit(request)
        if self._queue is not None and request.batch <= self.max_batch:
            self._queue.submit(request)
        else:
            self._execute_batch([request])
        return request.future

    def conv2d(self, x: np.ndarray, weight: np.ndarray,
               bias: np.ndarray | None = None,
               padding: int | tuple | str = 0, stride: int | tuple = 1,
               dilation: int | tuple = 1, groups: int = 1,
               algorithm: str = "polyhankel", strategy: str = "sum",
               backend: str | None = None,
               timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`.

        *timeout* doubles as the request's deadline; a timed-out future
        is cancelled so no stage keeps working for a caller that left
        (see :meth:`ConvServer.conv2d` for the rationale).
        """
        future = self.submit(x, weight, bias, padding, stride, dilation,
                             groups, algorithm, strategy, backend,
                             deadline_s=timeout)
        try:
            return future.result(timeout)
        except DeadlineExceeded:
            # Shed by a stage; keep its typed error.  (Ordering matters:
            # on 3.11+ DeadlineExceeded IS a futures TimeoutError.)
            raise
        except FutureTimeoutError:
            future.cancel()
            raise DeadlineExceeded(
                f"cluster conv2d timed out after {timeout:g}s; request "
                f"cancelled") from None

    def _execute_batch(self, batch: list[ConvRequest]) -> None:
        # No router lock here: _route can block on slot backpressure, and
        # the reader threads that free slots need the lock to complete
        # dispatches.  _route/_send_dispatch take it only around the
        # shared maps they touch.
        batch = shed_expired(batch)
        if not batch:
            return
        dispatch = _Dispatch(batch, stack_requests(batch))
        self._route(dispatch)

    # -- routing and transport -----------------------------------------------

    def _pick_replica(self, key: CoalesceKey,
                      exclude: frozenset = frozenset()) -> _Replica | None:
        with self._lock:
            alive = [r for r in self._replicas.values()
                     if r.alive and r.id not in exclude]
            if not alive:
                alive = [r for r in self._replicas.values() if r.alive]
            if not alive:
                return None
            healthy = [r for r in alive
                       if not self._breaker.is_open(("replica", r.id))]
            candidates = healthy or alive
            home = candidates[hash(key) % len(candidates)]
            least = min(candidates, key=lambda r: len(r.inflight))
            if len(home.inflight) - len(least.inflight) \
                    > self.imbalance_limit:
                return least
            return home

    def _route(self, dispatch: _Dispatch,
               exclude: frozenset = frozenset()) -> None:
        """Send *dispatch* to a replica, retrying transport failures.

        Retries are paced by capped exponential backoff with
        deterministic jitter (:func:`~repro.serve.overload.backoff_delay`
        keyed on the dispatch's coalescing key), and every pass first
        sheds riders whose deadline lapsed while the dispatch waited —
        a batch whose riders are all dead is dropped without a send.
        """
        while True:
            if dispatch.attempts > self.max_retries:
                dispatch.fail(ClusterUnavailableError(
                    f"dispatch failed after {dispatch.attempts} "
                    f"attempt(s)"))
                self._release_dispatch_slots(dispatch)
                self._notify_drained()
                return
            if dispatch.attempts > 0:
                time.sleep(backoff_delay(
                    dispatch.attempts, self.config.backoff_base_s,
                    self.config.backoff_cap_s, token=dispatch.key))
            # Shed expired riders *in place* (their futures resolve but
            # the list keeps its shape — split_result needs row
            # alignment if the batch still flies); drop the dispatch
            # entirely once nobody is left waiting.
            now = time.monotonic()
            for request in dispatch.requests:
                if request.expired(now):
                    waited = (now - request.enqueued_at) * 1e3
                    shed_request(request, DeadlineExceeded(
                        f"request deadline exceeded before cluster "
                        f"dispatch (waited {waited:.1f}ms)"))
            if all(r.future.done() for r in dispatch.requests):
                self._release_dispatch_slots(dispatch)
                self._notify_drained()
                return
            replica = self._pick_replica(dispatch.key, exclude)
            if replica is None:
                dispatch.fail(ClusterUnavailableError(
                    "no live replica available"))
                self._release_dispatch_slots(dispatch)
                self._notify_drained()
                return
            generation = replica.generation
            try:
                self._send_dispatch(replica, dispatch)
                return
            except SlotTimeout:
                # Arena pressure, not a replica problem (SlotTimeout is
                # an OSError — catch it first or a starved weight
                # shipment reads as transport death and the router kills
                # a healthy worker).  Back off and retry the same pool.
                dispatch.attempts += 1
            except (OSError, ValueError, EOFError):
                # Transport died under us: mark the replica, try
                # another.  The death is scoped to the generation we
                # picked — if the supervisor respawned meanwhile, the
                # failure belonged to the old pipe and the fresh process
                # stays up.
                dispatch.attempts += 1
                exclude = exclude | {replica.id}
                self._on_replica_death(replica, generation)
            except Exception as exc:
                dispatch.fail(exc)
                self._release_dispatch_slots(dispatch)
                self._notify_drained()
                return

    def _tensor_fingerprint(self, kind: str, array: np.ndarray) -> tuple:
        # id() is stable while the request pins the array (ConvRequest
        # holds strong references); shape/dtype disambiguate id reuse
        # across differently-shaped tensors.
        return (kind, id(array), array.shape, str(array.dtype))

    def _ship_tensor(self, replica: _Replica, fp: tuple,
                     array: np.ndarray, spec=None) -> None:
        """Send one weight/bias into the replica's tensor cache."""
        # use_reserve: a shipment is transient (freed on the worker's
        # ack or the replica's death) and must go through even when
        # long-lived dispatch pairs have pinned every ordinary slot.
        slot = self._alloc.acquire(timeout=self.slot_timeout_s,
                                   use_reserve=True)
        try:
            seq = self._arena.write(slot, np.asarray(array, dtype=float))
            send_control(replica.conn, {"kind": "tensor", "fp": fp,
                                        "slot": slot, "seq": seq,
                                        "spec": spec})
        except BaseException:
            self._alloc.release(slot)
            raise
        with self._lock:
            replica.pending_tensor_slots[slot] = slot
        replica.shipped.add(fp)
        counters.add("serve.cluster.tensor_ships", replica=replica.id)

    def _plan_spec(self, key: CoalesceKey, x: np.ndarray,
                   weight: np.ndarray):
        """The family's PlanSpec, for worker-side plan rehydration."""
        if key.op != "conv2d" or key.algorithm != "polyhankel":
            return None
        try:
            from repro.core.planning import PlanSpec
            from repro.utils.shapes import ConvShape

            shape = ConvShape.from_tensors(
                x.shape, weight.shape, key.padding, key.stride,
                key.dilation, key.groups)
            return PlanSpec(shape, "auto", key.strategy, key.backend)
        except Exception:
            return None

    def _send_dispatch(self, replica: _Replica,
                       dispatch: _Dispatch) -> None:
        key = dispatch.key
        first = dispatch.requests[0]
        if dispatch.in_slot is None:
            # First routing of this dispatch: pin its slot pair.  Both
            # slots are taken atomically (see SlotAllocator) and stay
            # held across retries, so a rerouted dispatch never re-waits
            # on backpressure while holding half its slots.
            in_slot, out_slot = self._alloc.acquire_many(
                2, timeout=self.slot_timeout_s)
            dispatch.in_slot, dispatch.out_slot = in_slot, out_slot
            dispatch.in_seq = self._arena.write(in_slot, dispatch.stacked)
        req_id = next(self._req_ids)
        weight_fp = self._tensor_fingerprint("w", first.weight)
        bias_fp = None if first.bias is None \
            else self._tensor_fingerprint("b", first.bias)
        params = {
            "padding": key.padding, "stride": key.stride,
            "dilation": key.dilation, "groups": key.groups,
            "algorithm": key.algorithm, "strategy": key.strategy,
            "backend": key.backend, "op": key.op,
            "output_padding": key.output_padding,
        }
        with replica.send_lock:
            # Pipe order guarantees the worker caches tensors before the
            # conv order that references them arrives.
            if weight_fp not in replica.shipped:
                self._ship_tensor(replica, weight_fp, first.weight,
                                  spec=self._plan_spec(
                                      key, dispatch.stacked, first.weight))
            if bias_fp is not None and bias_fp not in replica.shipped:
                self._ship_tensor(replica, bias_fp, first.bias)
            with self._lock:
                replica.inflight[req_id] = dispatch
            try:
                send_control(replica.conn, {
                    "kind": "conv", "req": req_id,
                    "in_slot": dispatch.in_slot,
                    "in_seq": dispatch.in_seq,
                    "out_slot": dispatch.out_slot,
                    "weight_fp": weight_fp, "bias_fp": bias_fp,
                    # The batch deadline (max over riders; None when any
                    # rider is unbounded): once it passes, *every* rider
                    # is dead, so the worker may shed the whole order.
                    "deadline": batch_deadline(dispatch.requests),
                    "params": params,
                })
            except BaseException:
                with self._lock:
                    replica.inflight.pop(req_id, None)
                raise
        dispatch.sent_at = time.monotonic()
        counters.add("serve.cluster.dispatches", replica=replica.id)
        counters.add("serve.cluster.dispatch_rows", dispatch.rows,
                     replica=replica.id)

    def _release_dispatch_slots(self, dispatch: _Dispatch) -> None:
        slots = [s for s in (dispatch.in_slot, dispatch.out_slot)
                 if s is not None]
        dispatch.in_slot = dispatch.out_slot = None
        if not slots:
            return
        if faults._STACK and faults.should_leak_slots():
            # Chaos drill: simulate a slot-accounting bug by "forgetting"
            # this release.  The arena simply runs on reduced capacity;
            # the counter is what lets the drill (and an operator)
            # notice.
            counters.add("serve.cluster.slot_leaks", len(slots))
            return
        self._alloc.release(*slots)

    # -- completion side -----------------------------------------------------

    def _reader(self, replica: _Replica, conn,
                generation: int | None = None) -> None:
        """Drain one replica's completions until its pipe dies."""
        while True:
            try:
                msg = recv_control_from(conn)
            except (EOFError, OSError):
                self._on_replica_death(replica, generation)
                return
            kind = msg["kind"]
            if kind == "done":
                with self._lock:
                    dispatch = replica.inflight.pop(msg["req"], None)
                if dispatch is None:
                    continue  # answered by a retry on another replica
                self._complete(replica, dispatch, msg["seq"])
            elif kind == "error":
                with self._lock:
                    dispatch = replica.inflight.pop(msg["req"], None)
                if dispatch is None:
                    continue
                counters.add("serve.cluster.worker_errors",
                             replica=replica.id)
                dispatch.attempts += 1
                if dispatch.attempts > self.max_retries:
                    dispatch.fail(RuntimeError(
                        f"cluster worker {replica.id} failed: "
                        f"{msg['error']}"))
                    self._release_dispatch_slots(dispatch)
                    self._notify_drained()
                else:
                    self._route(dispatch,
                                exclude=frozenset({replica.id}))
            elif kind == "shed":
                # The worker found every rider's deadline already past
                # and declined to execute; resolve the riders typed and
                # free the slot pair.
                with self._lock:
                    dispatch = replica.inflight.pop(msg["req"], None)
                if dispatch is None:
                    continue
                counters.add("serve.cluster.worker_sheds",
                             replica=replica.id)
                for request in dispatch.requests:
                    shed_request(request, DeadlineExceeded(
                        "request deadline exceeded before cluster "
                        "execution (shed by the worker)"))
                self._release_dispatch_slots(dispatch)
                self._notify_drained()
            elif kind in ("tensor_ok", "tensor_err"):
                with self._lock:
                    slot = replica.pending_tensor_slots.pop(
                        msg["slot"], None)
                if slot is not None:
                    self._alloc.release(slot)
                if kind == "tensor_err":
                    replica.shipped.discard(msg["fp"])
            elif kind in ("fault_ok", "fault_err"):
                if kind == "fault_err":
                    self._fault_errors[msg["token"]] = \
                        msg.get("error", "unknown error")
                event = self._fault_events.pop(msg["token"], None)
                if event is not None:
                    event.set()
            elif kind == "stats":
                counters.merge_rows(f"replica{replica.id}", msg["rows"])
                event = self._stats_events.pop(msg["token"], None)
                if event is not None:
                    event.set()
            elif kind == "pong":
                event = self._ping_events.get(msg["token"])
                if event is not None:
                    event.set()

    def _complete(self, replica: _Replica, dispatch: _Dispatch,
                  out_seq: int) -> None:
        try:
            out = self._arena.read(dispatch.out_slot, out_seq, copy=True)
        except Exception as exc:
            dispatch.fail(exc)
            self._release_dispatch_slots(dispatch)
            self._notify_drained()
            return
        self._release_dispatch_slots(dispatch)
        self._breaker.record_success(("replica", replica.id))
        results = split_result(out, dispatch.requests)
        served = 0
        for request, result in zip(dispatch.requests, results):
            if not request.future.done():
                request.future.set_result(result)
                served += 1
        replica.served += served
        counters.add("serve.cluster.served", served, replica=replica.id)
        self._notify_drained()

    def _notify_drained(self) -> None:
        with self._drained:
            self._drained.notify_all()

    def _inflight_count(self) -> int:
        with self._lock:
            return sum(len(r.inflight) for r in self._replicas.values())

    # -- introspection -------------------------------------------------------

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [r.pid for r in self._replicas.values()
                    if r.pid is not None]

    # -- chaos drills --------------------------------------------------------

    def _fault_order(self, replica: _Replica, order: dict,
                     timeout: float) -> bool:
        """Ship one fault-control order and wait for its ack.

        A worker-side rejection (``fault_err`` — e.g. an unknown fault
        kind) raises :class:`ValueError` with the worker's message: a
        drill that thinks it armed a fault when the worker refused would
        assert recovery that never happened.
        """
        token = next(self._token_ids)
        event = threading.Event()
        self._fault_events[token] = event
        try:
            with replica.send_lock:
                send_control(replica.conn, dict(order, token=token))
        except (OSError, ValueError):
            self._fault_events.pop(token, None)
            return False
        ok = event.wait(timeout)
        self._fault_events.pop(token, None)
        error = self._fault_errors.pop(token, None)
        if error is not None:
            raise ValueError(
                f"replica {replica.id} rejected fault order: {error}")
        return ok

    def inject_worker_faults(self, *kinds: str,
                             replica_ids: list[int] | None = None,
                             seed: int = 0, rate: float = 1.0,
                             max_fires: int | None = None,
                             params: dict | None = None,
                             timeout: float = 5.0) -> list[int]:
        """Arm fault injection inside worker processes (chaos drills).

        Sends an ``inject`` order to the chosen replicas (*all* when
        *replica_ids* is None) and waits for each acknowledgement;
        returns the ids that acked.  Validation happens worker-side with
        the same :class:`~repro.guard.faults.FaultState` rules as
        in-process injection.  Router-side faults (``slot_leak``) are
        armed with :func:`repro.guard.faults.inject` in the caller
        instead.
        """
        order = {"kind": "inject", "kinds": list(kinds), "seed": seed,
                 "rate": rate, "max_fires": max_fires,
                 "params": params or {}}
        with self._lock:
            replicas = [r for r in self._replicas.values()
                        if r.alive and (replica_ids is None
                                        or r.id in replica_ids)]
        return [r.id for r in replicas
                if self._fault_order(r, order, timeout)]

    def clear_worker_faults(self, replica_ids: list[int] | None = None,
                            timeout: float = 5.0) -> list[int]:
        """Disarm every control-plane fault on the chosen replicas."""
        with self._lock:
            replicas = [r for r in self._replicas.values()
                        if r.alive and (replica_ids is None
                                        or r.id in replica_ids)]
        return [r.id for r in replicas
                if self._fault_order(r, {"kind": "clear_faults"}, timeout)]

    def refresh_worker_stats(self, timeout: float = 2.0) -> None:
        """Pull every live replica's counter snapshot into the registry."""
        events = []
        with self._lock:
            replicas = [r for r in self._replicas.values() if r.alive]
        for replica in replicas:
            token = next(self._token_ids)
            event = threading.Event()
            self._stats_events[token] = event
            try:
                with replica.send_lock:
                    send_control(replica.conn, {"kind": "stats",
                                                "token": token})
                events.append(event)
            except (OSError, ValueError):
                self._stats_events.pop(token, None)
        deadline = time.monotonic() + timeout
        for event in events:
            event.wait(max(0.0, deadline - time.monotonic()))
        # Replica workers record per-arm selection timings as counters;
        # the merge above lands them proc-tagged in the registry.  Fold
        # their growth into the router's bandit so the whole cluster
        # learns from every replica's measurements.
        from repro.selection.bandit import active_bandit

        bandit = active_bandit()
        if bandit is not None:
            bandit.ingest_replica_rows()

    def stats(self, refresh: bool = True) -> dict:
        """Aggregated router + per-replica view of the cluster."""
        from repro.observe.registry import replica_stats, serve_stats

        if refresh and not self._closed:
            self.refresh_worker_stats()
        breaker = self._breaker.snapshot()
        merged = replica_stats()
        with self._lock:
            replicas = []
            for r in sorted(self._replicas.values(), key=lambda r: r.id):
                key = ("replica", r.id)
                replicas.append({
                    "id": r.id, "pid": r.pid, "alive": r.alive,
                    "served": r.served, "inflight": len(r.inflight),
                    "breaker_open": key in breaker["open"],
                    "failures": breaker["failures"].get(key, 0),
                    "worker": merged.get(f"replica{r.id}", {}),
                })
        stats = serve_stats()
        stats["cluster"] = {
            "workers": self.workers,
            "transport": "shm",
            "arena": {"slots": self._arena.slots,
                      "slot_bytes": self._arena.slot_bytes,
                      "free": self._alloc.available()},
            "replicas": replicas,
        }
        return stats

    def pending_count(self) -> int:
        queued = self._queue.pending_count() if self._queue else 0
        return queued + self._inflight_count()

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain in-flight work, stop workers, unlink the arena."""
        if self._closed:
            return
        if self._queue is not None:
            self._queue.close(timeout)
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._drained:
            while self._inflight_count():
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._drained.wait(remaining if remaining is None
                                   else min(remaining, 0.5))
        # Final pull of replica arm timings, then persist the learned
        # selection table (no-op unless a table path is configured) so a
        # restarted cluster warm-starts instead of re-exploring.
        from repro.selection.bandit import active_bandit

        bandit = active_bandit()
        if bandit is not None:
            self.refresh_worker_stats(timeout=1.0)
            bandit.save()
        self._closed = True
        self._respawn_wanted.set()
        self._watchdog_stop.set()
        # Join the supervisor before snapshotting: a respawn completing
        # after the snapshot would put up a fresh worker no stop order
        # ever reaches.  Once the join returns, any replica it spawned
        # is in the snapshot below.
        if self._supervisor.is_alive():
            self._supervisor.join(
                timeout=self.config.ping_timeout_s + 1.0)
        with self._lock:
            replicas = list(self._replicas.values())
        for replica in replicas:
            if replica.alive and replica.conn is not None:
                try:
                    with replica.send_lock:
                        send_control(replica.conn, {"kind": "stop"})
                except (OSError, ValueError):
                    pass
        join_s = self.config.join_timeout_s
        for replica in replicas:
            process = replica.process
            if process is None:
                continue
            process.join(timeout=join_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=join_s)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=join_s)
            replica.alive = False
            if replica.conn is not None:
                try:
                    replica.conn.close()
                except OSError:  # pragma: no cover
                    pass
        self._alloc.close()
        self._arena.close()

    def __enter__(self) -> "ClusterServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def recv_control_from(conn):
    """Blocking control receive (separate name so tests can intercept)."""
    from repro.serve.shm import recv_control

    return recv_control(conn)
