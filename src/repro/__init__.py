"""PolyHankel: polynomial-multiplication-derived convolution (CGO 2025).

Reproduction of Xu, Zhang, Cheng & Li, "An Efficient Polynomial
Multiplication Derived Implementation of Convolution in Neural Networks".

Quickstart::

    import numpy as np
    import repro

    x = np.random.randn(8, 3, 64, 64)      # NCHW input
    w = np.random.randn(16, 3, 5, 5)       # FCKhKw kernels
    y = repro.conv2d(x, w, padding=2)      # PolyHankel by default

    # compare against any cuDNN-style baseline
    y_ref = repro.conv2d(x, w, padding=2, algorithm="gemm")
    assert np.allclose(y, y_ref)

    # simulated GPU timing on the paper's devices
    shape = repro.ConvShape.from_tensors(x.shape, w.shape, padding=2)
    repro.simulate_gpu_ms("polyhankel", shape, "v100")

Packages:

- :mod:`repro.core`       — the PolyHankel method itself;
- :mod:`repro.baselines`  — naive / GEMM-family / FFT-family / Winograd /
  fine-grain FFT comparators;
- :mod:`repro.fft`        — from-scratch FFT substrate;
- :mod:`repro.hankel`     — structured (doubly blocked) Hankel matrices;
- :mod:`repro.nn`         — minimal inference framework + synthetic nets;
- :mod:`repro.perfmodel`  — GPU counter & roofline timing models;
- :mod:`repro.selection`  — per-call algorithm selection heuristics.
"""

from repro.baselines.registry import (
    ConvAlgorithm,
    convolve,
    list_algorithms,
    supports,
)
from repro.core.multichannel import PolyHankelPlan, conv2d_polyhankel
from repro.core.ndim import (
    conv1d_polyhankel,
    conv3d_polyhankel,
    convnd_polyhankel,
)
from repro.core.polyhankel import conv2d_single
from repro.perfmodel.counters import count as count_operations
from repro.perfmodel.device import PAPER_DEVICES, get_device
from repro.perfmodel.timing import simulate as simulate_gpu
from repro.perfmodel.timing import simulate_ms as simulate_gpu_ms
from repro.selection.heuristic import select_algorithm
from repro.utils.shapes import ConvShape

__version__ = "1.0.0"

__all__ = [
    "conv2d",
    "conv2d_single",
    "conv2d_polyhankel",
    "conv1d_polyhankel",
    "conv3d_polyhankel",
    "convnd_polyhankel",
    "convolve",
    "ConvAlgorithm",
    "ConvShape",
    "PolyHankelPlan",
    "list_algorithms",
    "supports",
    "select_algorithm",
    "simulate_gpu",
    "simulate_gpu_ms",
    "count_operations",
    "get_device",
    "PAPER_DEVICES",
    "__version__",
]


def conv2d(x, weight, bias=None, padding: int = 0, stride: int = 1,
           dilation=1, groups: int = 1,
           algorithm: "ConvAlgorithm | str" = ConvAlgorithm.POLYHANKEL,
           **kwargs):
    """2D convolution on NCHW input, PolyHankel by default.

    ``algorithm`` accepts any :class:`ConvAlgorithm` or its string value
    (``"gemm"``, ``"fft"``, ``"winograd"``, ``"polyhankel"``, ...);
    ``dilation``/``groups`` work with every algorithm.  Extra keyword
    arguments are forwarded to the algorithm implementation (e.g.
    ``fft_policy=`` for the FFT-based methods).
    """
    from repro.nn.functional import conv2d as _conv2d

    return _conv2d(x, weight, bias=bias, padding=padding, stride=stride,
                   dilation=dilation, groups=groups, algorithm=algorithm,
                   **kwargs)
