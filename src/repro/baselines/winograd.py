"""Winograd convolution F(m, r) with generated transforms (cuDNN WINOGRAD).

cuDNN ships hand-derived transforms for 3x3 kernels only (the paper's Fig. 4
shows Winograd as a single data point at kernel size 3).  Here the transform
matrices for any ``F(m, r)`` are *generated* from first principles:

The length-``alpha = m + r - 1`` linear convolution of a length-``m`` signal
with the length-``r`` filter is computed exactly by Toom-Cook
evaluation/interpolation at ``alpha`` points (``alpha - 1`` finite points
plus infinity).  Writing that bilinear algorithm as
``conv = V^-1 . diag(R g) . Q``, the *correlation* needed by CNNs is its
transpose (transposition principle):

    y = A^T [ (G g) . (B^T d) ]   with
    A^T = Q^T (m x alpha),  G = R (alpha x r),  B^T = (V^-1)^T (alpha x alpha)

where Q, R, V are Vandermonde matrices of the chosen points over degrees
m, r and alpha respectively.  All matrices are computed in exact rational
arithmetic and converted to float once.  For (m, r) = (2, 3) this reproduces
the classic F(2,3) matrices up to the known diagonal-scaling freedom.

Numerical accuracy degrades as ``alpha`` grows (Vandermonde conditioning);
``MAX_ALPHA`` guards the supported range, mirroring why real libraries stop
at small tiles.
"""

from __future__ import annotations

import functools
from fractions import Fraction

import numpy as np

from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array, require

MAX_ALPHA = 10

# Canonical interpolation points, chosen small and symmetric to keep the
# Vandermonde systems well conditioned: 0, +-1, +-1/2, +-2, +-1/4, +-4, ...
_CANONICAL_POINTS: list[Fraction] = [Fraction(0)]
for _k in (1, 2, 4, 8):
    _CANONICAL_POINTS += [Fraction(_k), Fraction(-_k),
                          Fraction(1, _k), Fraction(-1, _k)]
# Deduplicate while keeping order (1 == 1/1 appears twice above).
_seen: set[Fraction] = set()
_CANONICAL_POINTS = [p for p in _CANONICAL_POINTS
                     if not (p in _seen or _seen.add(p))]


def _vandermonde(points: list[Fraction], cols: int) -> list[list[Fraction]]:
    """Rows ``[p^0 .. p^(cols-1)]`` for finite points, plus the infinity row
    ``[0, ..., 0, 1]`` selecting the leading coefficient."""
    rows = [[p ** j for j in range(cols)] for p in points]
    rows.append([Fraction(0)] * (cols - 1) + [Fraction(1)])
    return rows


def _invert(matrix: list[list[Fraction]]) -> list[list[Fraction]]:
    """Exact Gauss-Jordan inverse over the rationals."""
    n = len(matrix)
    aug = [row[:] + [Fraction(int(i == j)) for j in range(n)]
           for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if aug[r][col] != 0), None
        )
        if pivot is None:
            raise ValueError("transform point set is degenerate")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = Fraction(1) / aug[col][col]
        aug[col] = [v * inv_p for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [v - factor * p for v, p in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


@functools.lru_cache(maxsize=32)
def winograd_transforms(m: int, r: int) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
    """(A^T, G, B^T) for F(m, r); float64 arrays of shapes
    ``(m, alpha)``, ``(alpha, r)``, ``(alpha, alpha)``."""
    require(m >= 1 and r >= 1, "m and r must be positive")
    alpha = m + r - 1
    require(alpha >= 2, "F(1,1) needs no transform")
    require(alpha <= MAX_ALPHA,
            f"F({m},{r}) needs alpha={alpha} > {MAX_ALPHA}; transforms would "
            "be too ill-conditioned")
    points = _CANONICAL_POINTS[: alpha - 1]

    q = _vandermonde(points, m)       # (alpha, m)
    rr = _vandermonde(points, r)      # (alpha, r)
    v = _vandermonde(points, alpha)   # (alpha, alpha)
    v_inv = _invert(v)

    at = np.array([[float(q[i][k]) for i in range(alpha)]
                   for k in range(m)])
    g = np.array([[float(c) for c in row] for row in rr])
    bt = np.array([[float(v_inv[j][i]) for j in range(alpha)]
                   for i in range(alpha)])
    return at, g, bt


def winograd_correlate_1d(d: np.ndarray, g: np.ndarray, m: int) -> np.ndarray:
    """F(m, r) on one data segment: ``y_k = sum_j d[k+j] g[j]``, k < m."""
    d = ensure_array(d, "d", ndim=1, dtype=float)
    g = ensure_array(g, "g", ndim=1, dtype=float)
    r = len(g)
    require(len(d) == m + r - 1, f"data segment must have {m + r - 1} samples")
    at, gm, bt = winograd_transforms(m, r)
    return at @ ((gm @ g) * (bt @ d))


def conv2d_winograd(x: np.ndarray, weight: np.ndarray, padding: int = 0,
                    stride: int = 1, m: int = 2,
                    variant: str = "fused") -> np.ndarray:
    """NCHW convolution with nested 2D Winograd tiles F(m x m, kh x kw).

    Stride must be 1 (as in cuDNN's Winograd).  ``variant`` selects the
    execution style: ``"fused"`` contracts per-tile products in one einsum;
    ``"nonfused"`` materializes the transformed-tile workspace and runs an
    explicit batched GEMM per transform coordinate, mirroring cuDNN's
    WINOGRAD_NONFUSED pipeline.  Both produce identical results.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    require(stride == 1, "Winograd supports stride 1 only")
    if variant not in ("fused", "nonfused"):
        raise ValueError(f"unknown Winograd variant {variant!r}")
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)
    kh, kw = shape.kh, shape.kw

    at_h, g_h, bt_h = winograd_transforms(m, kh)
    at_w, g_w, bt_w = winograd_transforms(m, kw)
    alpha_h, alpha_w = m + kh - 1, m + kw - 1

    # Round the output plane up to whole m x m tiles; crop at the end.
    tiles_h = -(-shape.oh // m)
    tiles_w = -(-shape.ow // m)
    xp = pad2d(x, padding)
    need_h = tiles_h * m + kh - 1
    need_w = tiles_w * m + kw - 1
    xp = np.pad(xp, [(0, 0), (0, 0),
                     (0, need_h - shape.padded_ih),
                     (0, need_w - shape.padded_iw)])

    # Filter transform: U = G k G^T per (f, c).
    u = np.einsum("au,fcuv,bv->fcab", g_h, weight, g_w)

    # Extract overlapping data tiles (n, c, tiles_h, tiles_w, ah, aw).
    view = np.lib.stride_tricks.sliding_window_view(
        xp, (alpha_h, alpha_w), axis=(2, 3)
    )[:, :, ::m, ::m]
    # Data transform: V = B^T d B per tile.
    v = np.einsum("ay,nctsyx,bx->nctsab", bt_h, view, bt_w)

    if variant == "fused":
        prod = np.einsum("fcab,nctsab->nftsab", u, v)
    else:
        # Non-fused: per transform coordinate (a, b), a (f, c) x (c, n*t*s)
        # GEMM over an explicit workspace.
        n, c = shape.n, shape.c
        v_ws = v.transpose(5, 4, 1, 0, 2, 3).reshape(
            alpha_w, alpha_h, c, n * tiles_h * tiles_w
        )
        prod_ws = np.empty(
            (alpha_w, alpha_h, shape.f, n * tiles_h * tiles_w)
        )
        for b in range(alpha_w):
            for a in range(alpha_h):
                prod_ws[b, a] = u[:, :, a, b] @ v_ws[b, a]
        prod = prod_ws.reshape(
            alpha_w, alpha_h, shape.f, n, tiles_h, tiles_w
        ).transpose(3, 2, 4, 5, 1, 0)

    # Output transform: y = A^T M A per tile, then stitch tiles.
    y = np.einsum("ka,nftsab,lb->nftskl", at_h, prod, at_w)
    out = y.transpose(0, 1, 2, 4, 3, 5).reshape(
        shape.n, shape.f, tiles_h * m, tiles_w * m
    )
    return out[:, :, : shape.oh, : shape.ow]


def conv2d_winograd_nonfused(x: np.ndarray, weight: np.ndarray,
                             padding: int = 0, stride: int = 1,
                             m: int = 2) -> np.ndarray:
    """Convenience wrapper for the non-fused pipeline."""
    return conv2d_winograd(x, weight, padding, stride, m, variant="nonfused")
