"""Implicit GEMM convolution (cuDNN IMPLICIT_GEMM / IMPLICIT_PRECOMP_GEMM).

Performs the same arithmetic as im2col + GEMM without materializing the
unrolled matrix: the patch gather is fused into the accumulation loop.  The
"precomp" variant precomputes (and caches) the gather offset tables once per
shape, matching cuDNN's IMPLICIT_PRECOMP_GEMM which trades a small index
workspace for not recomputing addressing on the fly.
"""

from __future__ import annotations

import numpy as np

from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array

_OFFSET_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def _gather_offsets(shape: ConvShape) -> tuple[np.ndarray, np.ndarray]:
    """Row/col index tables mapping output positions x kernel taps to the
    padded input.  Stride moves the window origin; dilation spaces taps."""
    sh, sw = shape.stride_hw
    dh, dw = shape.dilation_hw
    rows = (sh * np.arange(shape.oh)[:, None, None, None]
            + dh * np.arange(shape.kh)[None, None, :, None])
    cols = (sw * np.arange(shape.ow)[None, :, None, None]
            + dw * np.arange(shape.kw)[None, None, None, :])
    rows, cols = np.broadcast_arrays(rows, cols)
    return np.ascontiguousarray(rows), np.ascontiguousarray(cols)


def precomputed_offsets(shape: ConvShape) -> tuple[np.ndarray, np.ndarray]:
    """Cached offset tables for *shape* (the PRECOMP workspace)."""
    key = (shape.oh, shape.ow, shape.kh, shape.kw, shape.stride_hw,
           shape.dilation_hw)
    if key not in _OFFSET_CACHE:
        _OFFSET_CACHE[key] = _gather_offsets(shape)
    return _OFFSET_CACHE[key]


def clear_offset_cache() -> None:
    """Drop cached offset tables (tests / memory control)."""
    _OFFSET_CACHE.clear()


def conv2d_implicit_gemm(x: np.ndarray, weight: np.ndarray, padding=0,
                         stride: int | tuple = 1, dilation: int | tuple = 1,
                         groups: int = 1,
                         precomputed: bool = False) -> np.ndarray:
    """NCHW convolution with the patch gather fused into the contraction.

    With ``precomputed=False`` the kernel-tap loop recomputes slice
    addressing each step (IMPLICIT_GEMM); with ``precomputed=True`` a cached
    index table drives one gather + one einsum (IMPLICIT_PRECOMP_GEMM).
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride, dilation, groups)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride,
                                   dilation, groups)
    xp = pad2d(x, shape.pad_tblr)
    sh, sw = shape.stride_hw
    dh, dw = shape.dilation_hw
    g, c_per, f_per = shape.groups, shape.group_channels, shape.group_filters
    xg = xp.reshape(shape.n, g, c_per, *xp.shape[-2:])
    wg = weight.reshape(g, f_per, c_per, shape.kh, shape.kw)

    if precomputed:
        rows, cols = precomputed_offsets(shape)
        # One big gather (n, g, c, oh, ow, kh, kw), then one contraction.
        patches = xg[:, :, :, rows, cols]
        out = np.einsum("ngcijuv,gfcuv->ngfij", patches, wg)
        return out.reshape(shape.output_shape())

    out = np.zeros((shape.n, g, f_per, shape.oh, shape.ow), dtype=float)
    for u in range(shape.kh):
        for v in range(shape.kw):
            window = xg[:, :, :, u * dh: u * dh + sh * shape.oh: sh,
                        v * dw: v * dw + sw * shape.ow: sw]
            out += np.einsum("ngchw,gfc->ngfhw", window, wg[:, :, :, u, v])
    return out.reshape(shape.output_shape())


def conv2d_implicit_precomp_gemm(x: np.ndarray, weight: np.ndarray,
                                 padding=0, stride: int | tuple = 1,
                                 dilation: int | tuple = 1,
                                 groups: int = 1) -> np.ndarray:
    """Convenience wrapper for the PRECOMP variant."""
    return conv2d_implicit_gemm(x, weight, padding, stride, dilation,
                                groups, precomputed=True)
