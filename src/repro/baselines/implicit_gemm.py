"""Implicit GEMM convolution (cuDNN IMPLICIT_GEMM / IMPLICIT_PRECOMP_GEMM).

Performs the same arithmetic as im2col + GEMM without materializing the
unrolled matrix: the patch gather is fused into the accumulation loop.  The
"precomp" variant precomputes (and caches) the gather offset tables once per
shape, matching cuDNN's IMPLICIT_PRECOMP_GEMM which trades a small index
workspace for not recomputing addressing on the fly.
"""

from __future__ import annotations

import numpy as np

from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array

_OFFSET_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def _gather_offsets(shape: ConvShape) -> tuple[np.ndarray, np.ndarray]:
    """Row/col index tables mapping output positions x kernel taps to the
    padded input."""
    rows = (shape.stride * np.arange(shape.oh)[:, None, None, None]
            + np.arange(shape.kh)[None, None, :, None])
    cols = (shape.stride * np.arange(shape.ow)[None, :, None, None]
            + np.arange(shape.kw)[None, None, None, :])
    rows, cols = np.broadcast_arrays(rows, cols)
    return np.ascontiguousarray(rows), np.ascontiguousarray(cols)


def precomputed_offsets(shape: ConvShape) -> tuple[np.ndarray, np.ndarray]:
    """Cached offset tables for *shape* (the PRECOMP workspace)."""
    key = (shape.oh, shape.ow, shape.kh, shape.kw, shape.stride)
    if key not in _OFFSET_CACHE:
        _OFFSET_CACHE[key] = _gather_offsets(shape)
    return _OFFSET_CACHE[key]


def clear_offset_cache() -> None:
    """Drop cached offset tables (tests / memory control)."""
    _OFFSET_CACHE.clear()


def conv2d_implicit_gemm(x: np.ndarray, weight: np.ndarray, padding: int = 0,
                         stride: int = 1,
                         precomputed: bool = False) -> np.ndarray:
    """NCHW convolution with the patch gather fused into the contraction.

    With ``precomputed=False`` the kernel-tap loop recomputes slice
    addressing each step (IMPLICIT_GEMM); with ``precomputed=True`` a cached
    index table drives one gather + one einsum (IMPLICIT_PRECOMP_GEMM).
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)
    xp = pad2d(x, padding)

    if precomputed:
        rows, cols = precomputed_offsets(shape)
        # One big gather (n, c, oh, ow, kh, kw), then a single contraction.
        patches = xp[:, :, rows, cols]
        return np.einsum("ncijuv,fcuv->nfij", patches, weight)

    out = np.zeros(shape.output_shape(), dtype=float)
    s = shape.stride
    for u in range(shape.kh):
        for v in range(shape.kw):
            window = xp[:, :, u: u + s * shape.oh: s, v: v + s * shape.ow: s]
            out += np.einsum("nchw,fc->nfhw", window, weight[:, :, u, v])
    return out


def conv2d_implicit_precomp_gemm(x: np.ndarray, weight: np.ndarray,
                                 padding: int = 0,
                                 stride: int = 1) -> np.ndarray:
    """Convenience wrapper for the PRECOMP variant."""
    return conv2d_implicit_gemm(x, weight, padding, stride, precomputed=True)
