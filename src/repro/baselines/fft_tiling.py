"""Tiled 2D-FFT convolution (cuDNN's FFT_TILING algorithm).

Splits the output plane into square tiles and convolves each tile with a
small 2D FFT over the corresponding (overlapping) input patch — 2D
overlap-save.  Compared with the monolithic FFT this caps the transform size
(cuDNN uses 32x32 tiles) at the cost of transforming the halo regions
repeatedly.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.fft2d import irfft2, rfft2
from repro.core.planning import FftPolicy, plan_fft_size
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array

DEFAULT_TILE = 32


def conv2d_fft_tiling(x: np.ndarray, weight: np.ndarray, padding: int = 0,
                      stride: int = 1, tile: int = DEFAULT_TILE,
                      fft_policy: FftPolicy = "pow2",
                      backend: str | None = None) -> np.ndarray:
    """NCHW convolution via per-tile FFTs (2D overlap-save)."""
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    if tile < 1:
        raise ValueError("tile must be positive")
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)

    xp = pad2d(x, padding)
    # Tiles are defined on the *pre-stride* valid-output grid; striding is a
    # final subsample, as in the monolithic FFT path.
    full_oh = shape.padded_ih - shape.kh + 1
    full_ow = shape.padded_iw - shape.kw + 1

    patch_h = tile + shape.kh - 1
    patch_w = tile + shape.kw - 1
    fh = plan_fft_size(patch_h, fft_policy)
    fw = plan_fft_size(patch_w, fft_policy)

    flipped = weight[:, :, ::-1, ::-1]
    w_hat = rfft2(flipped, (fh, fw), backend)        # (f, c, fh, bins)

    out_full = np.zeros((shape.n, shape.f, full_oh, full_ow), dtype=float)
    for ti in range(0, full_oh, tile):
        th = min(tile, full_oh - ti)
        for tj in range(0, full_ow, tile):
            tw = min(tile, full_ow - tj)
            patch = xp[:, :, ti: ti + th + shape.kh - 1,
                       tj: tj + tw + shape.kw - 1]
            x_hat = rfft2(patch, (fh, fw), backend)
            out_hat = np.einsum("ncyx,fcyx->nfyx", x_hat, w_hat)
            conv = irfft2(out_hat, (fh, fw), backend)
            out_full[:, :, ti: ti + th, tj: tj + tw] = conv[
                :, :, shape.kh - 1: shape.kh - 1 + th,
                shape.kw - 1: shape.kw - 1 + tw,
            ]
    s = shape.stride
    return out_full[:, :, : s * shape.oh: s, : s * shape.ow: s]
