"""Traditional 2D-FFT convolution (cuDNN's FFT algorithm).

Pads input and kernel to a common ``(ih + kh - 1, iw + kw - 1)`` extent,
transforms both with row-and-column 1D FFT passes, multiplies pointwise and
inverse-transforms — the "multiple passes over the data, operation
redundancy" corner of the paper's design space (Table 2, row 2).

The 2D transforms are composed from the library's 1D backend so that the
whole comparison runs on one FFT substrate.
"""

from __future__ import annotations

import numpy as np

from repro import fft as _fft
from repro.core.planning import FftPolicy, plan_fft_size
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array


def rfft2(x: np.ndarray, shape: tuple[int, int],
          backend: str | None = None) -> np.ndarray:
    """Real 2D FFT over the trailing two axes: rows pass then columns pass."""
    fft = _fft.get_backend(backend)
    rows = fft.rfft(x, shape[1])                     # 1D FFT per row
    cols = fft.fft(np.swapaxes(rows, -1, -2), shape[0])
    return np.swapaxes(cols, -1, -2)


def irfft2(x: np.ndarray, shape: tuple[int, int],
           backend: str | None = None) -> np.ndarray:
    """Inverse of :func:`rfft2`; returns a real array of *shape*."""
    fft = _fft.get_backend(backend)
    cols = fft.ifft(np.swapaxes(x, -1, -2), shape[0])
    rows = fft.irfft(np.swapaxes(cols, -1, -2), shape[1])
    return rows


def conv2d_fft(x: np.ndarray, weight: np.ndarray, padding: int = 0,
               stride: int = 1, fft_policy: FftPolicy = "smooth7",
               backend: str | None = None) -> np.ndarray:
    """NCHW convolution in the 2D Fourier domain.

    Deep-learning convolution is cross-correlation, so the kernel is
    spatially flipped before the Fourier product.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)

    xp = pad2d(x, padding)
    fh = plan_fft_size(shape.padded_ih + shape.kh - 1, fft_policy)
    fw = plan_fft_size(shape.padded_iw + shape.kw - 1, fft_policy)

    flipped = weight[:, :, ::-1, ::-1]
    x_hat = rfft2(xp, (fh, fw), backend)             # (n, c, fh, bins)
    w_hat = rfft2(flipped, (fh, fw), backend)        # (f, c, fh, bins)
    out_hat = np.einsum("ncyx,fcyx->nfyx", x_hat, w_hat)
    full = irfft2(out_hat, (fh, fw), backend)        # linear conv, "full"

    # The valid cross-correlation starts at (kh - 1, kw - 1).
    top, left = shape.kh - 1, shape.kw - 1
    s = shape.stride
    return full[:, :,
                top: top + s * shape.oh: s,
                left: left + s * shape.ow: s]
