"""Algorithm registry: cuDNN-style enumeration and dispatch.

The paper compares PolyHankel against the full cuDNN menu (Sec. 4, Fig. 5).
This registry mirrors cuDNN's ``cudnnConvolutionFwdAlgo_t`` naming so the
benchmarks read like the paper's figures, and adds the two research methods
(fine-grain FFT, PolyHankel).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.fft2d import conv2d_fft
from repro.baselines.fft_tiling import conv2d_fft_tiling
from repro.baselines.finegrain_fft import conv2d_finegrain_fft
from repro.baselines.im2col_gemm import conv2d_im2col_gemm
from repro.baselines.implicit_gemm import (
    conv2d_implicit_gemm,
    conv2d_implicit_precomp_gemm,
)
from repro.baselines.naive import conv2d_naive
from repro.baselines.winograd import (
    MAX_ALPHA,
    conv2d_winograd,
    conv2d_winograd_nonfused,
)
from repro.core.multichannel import conv2d_polyhankel
from repro.core.overlap_save import conv2d_polyhankel_os
from repro.utils.shapes import ConvShape


class ConvAlgorithm(enum.Enum):
    """Every convolution algorithm known to the library."""

    NAIVE = "naive"
    GEMM = "gemm"
    IMPLICIT_GEMM = "implicit_gemm"
    IMPLICIT_PRECOMP_GEMM = "implicit_precomp_gemm"
    FFT = "fft"
    FFT_TILING = "fft_tiling"
    WINOGRAD = "winograd"
    WINOGRAD_NONFUSED = "winograd_nonfused"
    FINEGRAIN_FFT = "finegrain_fft"
    POLYHANKEL = "polyhankel"
    POLYHANKEL_OS = "polyhankel_os"


@dataclass(frozen=True)
class AlgorithmEntry:
    """Dispatch record: callable plus capability predicate."""

    algorithm: ConvAlgorithm
    fn: Callable[..., np.ndarray]
    description: str
    supports: Callable[[ConvShape], bool]


def _winograd_supported(shape: ConvShape) -> bool:
    # cuDNN restricts Winograd to 3x3 stride-1; our generated transforms are
    # a bit more general but still bounded by conditioning.
    return (shape.stride == 1
            and 2 + shape.kh - 1 <= MAX_ALPHA
            and 2 + shape.kw - 1 <= MAX_ALPHA)


_ENTRIES: dict[ConvAlgorithm, AlgorithmEntry] = {}


def _register(algorithm: ConvAlgorithm, fn, description: str,
              supports=lambda shape: True) -> None:
    _ENTRIES[algorithm] = AlgorithmEntry(algorithm, fn, description, supports)


_register(ConvAlgorithm.NAIVE, conv2d_naive,
          "direct definition-following convolution (reference)")
_register(ConvAlgorithm.GEMM, conv2d_im2col_gemm,
          "explicit im2col expansion + GEMM")
_register(ConvAlgorithm.IMPLICIT_GEMM, conv2d_implicit_gemm,
          "GEMM with the patch gather fused into the contraction")
_register(ConvAlgorithm.IMPLICIT_PRECOMP_GEMM, conv2d_implicit_precomp_gemm,
          "implicit GEMM with precomputed gather offset tables")
_register(ConvAlgorithm.FFT, conv2d_fft,
          "monolithic 2D-FFT convolution")
_register(ConvAlgorithm.FFT_TILING, conv2d_fft_tiling,
          "tiled 2D-FFT convolution (2D overlap-save)")
_register(ConvAlgorithm.WINOGRAD, conv2d_winograd,
          "Winograd F(2x2, KhxKw) with generated transforms",
          _winograd_supported)
_register(ConvAlgorithm.WINOGRAD_NONFUSED, conv2d_winograd_nonfused,
          "Winograd with materialized transform workspaces",
          _winograd_supported)
_register(ConvAlgorithm.FINEGRAIN_FFT, conv2d_finegrain_fft,
          "Zhang & Li's per-row block-FFT method (PACT'20)")
_register(ConvAlgorithm.POLYHANKEL, conv2d_polyhankel,
          "this paper: polynomial-multiplication convolution, one 1D FFT")
_register(ConvAlgorithm.POLYHANKEL_OS, conv2d_polyhankel_os,
          "PolyHankel executed with overlap-save batch streaming")


def list_algorithms() -> list[ConvAlgorithm]:
    """All registered algorithms, in registration order."""
    return list(_ENTRIES)


def get_entry(algorithm: ConvAlgorithm | str) -> AlgorithmEntry:
    """Resolve an algorithm (enum or its string value) to its entry."""
    if isinstance(algorithm, str):
        try:
            algorithm = ConvAlgorithm(algorithm)
        except ValueError:
            names = [a.value for a in ConvAlgorithm]
            raise ValueError(
                f"unknown algorithm {algorithm!r}; one of {names}"
            ) from None
    return _ENTRIES[algorithm]


def supports(algorithm: ConvAlgorithm | str, shape: ConvShape) -> bool:
    """Whether *algorithm* can run the problem *shape*."""
    return get_entry(algorithm).supports(shape)


def convolve(x: np.ndarray, weight: np.ndarray,
             algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
             padding: int = 0, stride: int = 1, **kwargs) -> np.ndarray:
    """Run a convolution with an explicitly chosen algorithm.

    Raises ``ValueError`` when the algorithm cannot handle the shape (e.g.
    Winograd with stride 2), mirroring cuDNN's NOT_SUPPORTED status.
    """
    entry = get_entry(algorithm)
    shape = ConvShape.from_tensors(
        np.shape(x), np.shape(weight), padding, stride
    )
    if not entry.supports(shape):
        raise ValueError(
            f"algorithm {entry.algorithm.value} does not support this shape "
            f"(stride={stride}, kernel={shape.kh}x{shape.kw})"
        )
    return entry.fn(x, weight, padding=padding, stride=stride, **kwargs)
