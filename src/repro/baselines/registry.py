"""Algorithm registry: cuDNN-style enumeration and dispatch.

The paper compares PolyHankel against the full cuDNN menu (Sec. 4, Fig. 5).
This registry mirrors cuDNN's ``cudnnConvolutionFwdAlgo_t`` naming so the
benchmarks read like the paper's figures, and adds the two research methods
(fine-grain FFT, PolyHankel).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.fft2d import conv2d_fft
from repro.baselines.fft_tiling import conv2d_fft_tiling
from repro.baselines.finegrain_fft import conv2d_finegrain_fft
from repro.baselines.im2col_gemm import conv2d_im2col_gemm
from repro.baselines.implicit_gemm import (
    conv2d_implicit_gemm,
    conv2d_implicit_precomp_gemm,
)
from repro.baselines.naive import conv2d_naive
from repro.baselines.winograd import (
    MAX_ALPHA,
    conv2d_winograd,
    conv2d_winograd_nonfused,
)
from repro.core.multichannel import conv2d_polyhankel
from repro.core.overlap_save import conv2d_polyhankel_os
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape


class ConvAlgorithm(enum.Enum):
    """Every convolution algorithm known to the library."""

    NAIVE = "naive"
    GEMM = "gemm"
    IMPLICIT_GEMM = "implicit_gemm"
    IMPLICIT_PRECOMP_GEMM = "implicit_precomp_gemm"
    FFT = "fft"
    FFT_TILING = "fft_tiling"
    WINOGRAD = "winograd"
    WINOGRAD_NONFUSED = "winograd_nonfused"
    FINEGRAIN_FFT = "finegrain_fft"
    POLYHANKEL = "polyhankel"
    POLYHANKEL_OS = "polyhankel_os"


@dataclass(frozen=True)
class AlgorithmEntry:
    """Dispatch record: callable plus capability predicates.

    ``native=True`` means ``fn`` itself accepts the full parameter space
    (per-axis stride/dilation, asymmetric or ``"same"`` padding, groups).
    Non-native entries keep the classic ``(x, w, padding:int, stride:int)``
    signature and are *lowered* by :func:`convolve`: groups are split,
    dilation is materialized into the kernel, asymmetric pads become an
    explicit pre-pad, and non-uniform strides run at stride 1 and
    subsample — so every registered algorithm either runs the extended
    space or rejects it explicitly through ``supports``.
    """

    algorithm: ConvAlgorithm
    fn: Callable[..., np.ndarray]
    description: str
    supports: Callable[[ConvShape], bool]
    native: bool = False


def _winograd_supported(shape: ConvShape) -> bool:
    # cuDNN restricts Winograd to 3x3 stride-1; our generated transforms are
    # a bit more general but still bounded by conditioning.  Dilation is
    # lowered into the kernel, so the *effective* extents must fit the tile.
    return (shape.stride_hw == (1, 1)
            and 2 + shape.eff_kh - 1 <= MAX_ALPHA
            and 2 + shape.eff_kw - 1 <= MAX_ALPHA)


_ENTRIES: dict[ConvAlgorithm, AlgorithmEntry] = {}


def _register(algorithm: ConvAlgorithm, fn, description: str,
              supports=lambda shape: True, native: bool = False) -> None:
    _ENTRIES[algorithm] = AlgorithmEntry(algorithm, fn, description,
                                         supports, native)


_register(ConvAlgorithm.NAIVE, conv2d_naive,
          "direct definition-following convolution (reference)",
          native=True)
_register(ConvAlgorithm.GEMM, conv2d_im2col_gemm,
          "explicit im2col expansion + GEMM", native=True)
_register(ConvAlgorithm.IMPLICIT_GEMM, conv2d_implicit_gemm,
          "GEMM with the patch gather fused into the contraction",
          native=True)
_register(ConvAlgorithm.IMPLICIT_PRECOMP_GEMM, conv2d_implicit_precomp_gemm,
          "implicit GEMM with precomputed gather offset tables", native=True)
_register(ConvAlgorithm.FFT, conv2d_fft,
          "monolithic 2D-FFT convolution")
_register(ConvAlgorithm.FFT_TILING, conv2d_fft_tiling,
          "tiled 2D-FFT convolution (2D overlap-save)")
_register(ConvAlgorithm.WINOGRAD, conv2d_winograd,
          "Winograd F(2x2, KhxKw) with generated transforms",
          _winograd_supported)
_register(ConvAlgorithm.WINOGRAD_NONFUSED, conv2d_winograd_nonfused,
          "Winograd with materialized transform workspaces",
          _winograd_supported)
_register(ConvAlgorithm.FINEGRAIN_FFT, conv2d_finegrain_fft,
          "Zhang & Li's per-row block-FFT method (PACT'20)")
_register(ConvAlgorithm.POLYHANKEL, conv2d_polyhankel,
          "this paper: polynomial-multiplication convolution, one 1D FFT",
          native=True)
_register(ConvAlgorithm.POLYHANKEL_OS, conv2d_polyhankel_os,
          "PolyHankel executed with overlap-save batch streaming")


def list_algorithms() -> list[ConvAlgorithm]:
    """All registered algorithms, in registration order."""
    return list(_ENTRIES)


def get_entry(algorithm: ConvAlgorithm | str) -> AlgorithmEntry:
    """Resolve an algorithm (enum or its string value) to its entry."""
    if isinstance(algorithm, str):
        try:
            algorithm = ConvAlgorithm(algorithm)
        except ValueError:
            names = [a.value for a in ConvAlgorithm]
            raise ValueError(
                f"unknown algorithm {algorithm!r}; one of {names}"
            ) from None
    return _ENTRIES[algorithm]


def supports(algorithm: ConvAlgorithm | str, shape: ConvShape) -> bool:
    """Whether *algorithm* can run the problem *shape*."""
    return get_entry(algorithm).supports(shape)


#: Default descent for guarded execution: the research method first, its
#: streaming variant (a different code path over the same math), then the
#: exact non-FFT routes.  GEMM and naive share no machinery with the FFT
#: pipeline, so a broken backend or poisoned spectrum cannot follow the
#: chain all the way down.
FALLBACK_ORDER = (
    ConvAlgorithm.POLYHANKEL,
    ConvAlgorithm.POLYHANKEL_OS,
    ConvAlgorithm.GEMM,
    ConvAlgorithm.NAIVE,
)


def fallback_chain(shape: ConvShape,
                   primary: ConvAlgorithm | str | None = None,
                   order=None) -> list[ConvAlgorithm]:
    """Ordered algorithms guarded execution may try for *shape*.

    The requested *primary* comes first, followed by *order*
    (:data:`FALLBACK_ORDER` by default, enums or string values) minus
    duplicates, keeping only algorithms whose ``supports`` predicate
    accepts the shape.  Never empty in practice: naive supports
    everything.

    ``order="ranked"`` derives the descent from the selector's roofline
    ranking for *shape* (:func:`repro.selection.heuristic.
    ranked_fallback_order`): on degradation the chain tries the modeled-
    fastest alternative for this geometry first instead of the static
    favorite.  The guard wires this through ``GuardConfig(chain="ranked")``.
    """
    if order is None:
        order = FALLBACK_ORDER
    elif isinstance(order, str):
        if order != "ranked":
            raise ValueError(
                f"unknown chain order {order!r}; expected a sequence of "
                "algorithms or the string 'ranked'")
        from repro.selection.heuristic import ranked_fallback_order

        order = ranked_fallback_order(shape)
    ordered: list[ConvAlgorithm] = []
    if primary is not None:
        ordered.append(get_entry(primary).algorithm)
    for algo in order:
        algo = get_entry(algo).algorithm
        if algo not in ordered:
            ordered.append(algo)
    return [algo for algo in ordered if _ENTRIES[algo].supports(shape)]


def _basic_space(shape: ConvShape) -> bool:
    """Whether *shape* sits in the classic (int padding/stride, dilation 1,
    one group) space every legacy kernel signature understands."""
    return (shape.groups == 1 and shape.dilation == 1
            and isinstance(shape.padding, int)
            and isinstance(shape.stride, int))


def _dilate_kernel(weight: np.ndarray,
                   dilation: tuple[int, int]) -> np.ndarray:
    """Materialize a dilated kernel by inserting zeros between taps."""
    dh, dw = dilation
    f, c, kh, kw = weight.shape
    out = np.zeros((f, c, (kh - 1) * dh + 1, (kw - 1) * dw + 1),
                   dtype=weight.dtype)
    out[:, :, ::dh, ::dw] = weight
    return out


def _convolve_lowered(entry: AlgorithmEntry, x: np.ndarray,
                      weight: np.ndarray, shape: ConvShape,
                      **kwargs) -> np.ndarray:
    """Run a basic-space kernel on an extended-space problem.

    Lowering steps, applied in order: split groups into independent
    sub-convolutions, turn asymmetric padding into an explicit pre-pad,
    materialize dilation into the kernel, and express non-uniform stride
    as stride 1 followed by per-axis output subsampling.  Each step
    preserves the exact arithmetic of the extended-space definition.
    """
    x = np.asarray(x)
    weight = np.asarray(weight)
    if shape.groups > 1:
        c_per, f_per = shape.group_channels, shape.group_filters
        sub = shape.group_view()
        outs = [
            _convolve_lowered(entry, x[:, g * c_per:(g + 1) * c_per],
                              weight[g * f_per:(g + 1) * f_per], sub,
                              **kwargs)
            for g in range(shape.groups)
        ]
        return np.concatenate(outs, axis=1)
    if not isinstance(shape.padding, int):
        pt, pb, pl, pr = shape.pad_tblr
        x = pad2d(x, (pt, pb, pl, pr))
        shape = shape.with_(ih=shape.ih + pt + pb, iw=shape.iw + pl + pr,
                            padding=0)
    if shape.dilation != 1:
        weight = _dilate_kernel(weight, shape.dilation_hw)
        shape = shape.with_(kh=shape.eff_kh, kw=shape.eff_kw, dilation=1)
    sh, sw = shape.stride_hw
    if sh == sw:
        return entry.fn(x, weight, padding=shape.padding, stride=sh,
                        **kwargs)
    out = entry.fn(x, weight, padding=shape.padding, stride=1, **kwargs)
    return out[:, :, ::sh, ::sw]


def convolve(x: np.ndarray, weight: np.ndarray,
             algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
             padding=0, stride: int | tuple = 1,
             dilation: int | tuple = 1, groups: int = 1,
             **kwargs) -> np.ndarray:
    """Run a convolution with an explicitly chosen algorithm.

    Accepts the full conv2d parameter space.  Native algorithms receive the
    parameters directly; legacy kernels are lowered (group split, explicit
    pre-pad, kernel dilation, stride-1 + subsample) so every algorithm
    either computes the extended problem or raises ``ValueError`` —
    mirroring cuDNN's NOT_SUPPORTED status — when its ``supports``
    predicate rejects the shape (e.g. Winograd with stride 2).
    """
    entry = get_entry(algorithm)
    shape = ConvShape.from_tensors(
        np.shape(x), np.shape(weight), padding, stride, dilation, groups
    )
    if not entry.supports(shape):
        raise ValueError(
            f"algorithm {entry.algorithm.value} does not support this shape "
            f"(stride={shape.stride}, dilation={shape.dilation}, "
            f"groups={shape.groups}, kernel={shape.kh}x{shape.kw}, "
            f"effective kernel={shape.eff_kh}x{shape.eff_kw})"
        )
    if entry.native:
        return entry.fn(x, weight, padding=padding, stride=stride,
                        dilation=dilation, groups=groups, **kwargs)
    if _basic_space(shape):
        return entry.fn(x, weight, padding=shape.padding,
                        stride=shape.stride, **kwargs)
    return _convolve_lowered(entry, x, weight, shape, **kwargs)
