"""The im2col + GEMM algorithm (cuDNN's explicit GEMM path).

Materializes the unrolled patch matrix — the doubly blocked Hankel matrix of
Sec. 2.1, with its full data redundancy — and hands the work to a dense
matrix multiply.  This is the "high data redundancy, high operational
efficiency" corner of the paper's design space.
"""

from __future__ import annotations

import numpy as np

from repro.hankel.im2col_view import im2col_patches
from repro.observe import span
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array


def conv2d_im2col_gemm(x: np.ndarray, weight: np.ndarray, padding=0,
                       stride: int | tuple = 1, dilation: int | tuple = 1,
                       groups: int = 1) -> np.ndarray:
    """NCHW convolution via explicit im2col expansion and one GEMM.

    Patch columns are channel-major, so groups split them into contiguous
    blocks and the grouped product is one batched GEMM over the group axis.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride, dilation, groups)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride,
                                   dilation, groups)

    with span("stage.im2col", bytes=x.nbytes) as im2col_span:
        patches = im2col_patches(x, shape.kh, shape.kw, padding, stride,
                                 dilation)               # (n, oh*ow, c*kh*kw)
        im2col_span.add_attrs(workspace_bytes=patches.nbytes)
    with span("stage.gemm", bytes=patches.nbytes + weight.nbytes):
        if groups == 1:
            kernel_matrix = weight.reshape(shape.f, -1)  # (f, c*kh*kw)
            out = patches @ kernel_matrix.T              # (n, oh*ow, f)
            return out.transpose(0, 2, 1).reshape(shape.output_shape())
        g, f_per = shape.groups, shape.group_filters
        taps = shape.group_channels * shape.kernel_elems
        pg = patches.reshape(shape.n, shape.output_elems, g, taps)
        wg = weight.reshape(g, f_per, taps)
        out = np.einsum("npgk,gfk->ngfp", pg, wg)
        return out.reshape(shape.output_shape())


def im2col_workspace_elems(shape: ConvShape) -> int:
    """Elements of the materialized im2col matrix (Table 3, row 1)."""
    return shape.n * shape.c * shape.kernel_elems * shape.output_elems
