"""Zhang & Li's fine-grain FFT convolution (PACT 2020).

The prior work the paper builds on: it observes the doubly blocked Hankel
structure of the im2col matrix and evaluates the block-level products with
*row-wise* 1D FFTs.  Each output row ``oh`` is the sum over ``kh`` of the 1D
correlation between input row ``oh + kh`` and kernel row ``kh``:

    out[oh, :] = sum_kh corr1d(input[oh + kh, :], kernel[kh, :])[valid]

Input rows are transformed once (``Ih`` FFTs of size ~2*Iw, padded to the
next power of two, as the paper notes: "requires data padding for each block
to the next power-of-two size"), kernel rows once, products accumulated per
output row, and one inverse FFT per output row recovers the spatial result.
Complexity matches the "Fine-grain FFT" rows of Tables 2-3.
"""

from __future__ import annotations

import numpy as np

from repro import fft as _fft
from repro.core.planning import plan_fft_size
from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array


def conv2d_finegrain_fft(x: np.ndarray, weight: np.ndarray, padding: int = 0,
                         stride: int = 1,
                         backend: str | None = None) -> np.ndarray:
    """NCHW convolution via per-row block FFTs."""
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)
    fft = _fft.get_backend(backend)

    xp = pad2d(x, padding)                               # (n, c, ph, pw)
    # Each row's linear correlation needs pw + kw - 1 samples; the method
    # pads row blocks to the next power of two (~2 * Iw).
    nfft = plan_fft_size(shape.padded_iw + shape.kw - 1, "pow2")

    x_hat = fft.rfft(xp, nfft)                           # (n, c, ph, bins)
    w_hat = fft.rfft(weight[:, :, :, ::-1], nfft)        # (f, c, kh, bins)

    s = shape.stride
    out = np.zeros(shape.output_shape(), dtype=float)
    for oh in range(shape.oh):
        # Accumulate the kh x c row products for this output row in the
        # frequency domain, then one inverse FFT.
        rows = x_hat[:, :, s * oh: s * oh + shape.kh, :]  # (n, c, kh, bins)
        acc = np.einsum("nckb,fckb->nfb", rows, w_hat)
        conv = fft.irfft(acc, nfft)                      # (n, f, nfft)
        start = shape.kw - 1
        out[:, :, oh, :] = conv[:, :, start: start + s * shape.ow: s]
    return out
