"""Op-level dispatch: conv1d / conv2d / conv3d / conv_transpose2d.

:mod:`repro.baselines.registry` enumerates *algorithms* for the rank-2
problem the paper studies.  This module enumerates *operations* and maps
each onto that registry:

- ``conv1d`` is lowered onto the 2D engine as a ``1 x L`` image (the
  degree map degenerates to ``t^j``), so **every** registered 2D
  algorithm — and the packed real-pair FFT pipeline, plan/spectrum
  caches, counters — serves 1D for free.
- ``conv3d`` runs the genuinely N-dimensional paths (single big FFT over
  the plane-stacked degree map, im2col GEMM, direct naive).
- ``conv_transpose2d`` is the adjoint the backward pass already
  computes: for any 2D algorithm it executes as the zero-stuffed
  stride-1 convolution inside :func:`repro.nn.grad.conv2d_backward_input`
  (PyTorch's ``(c_in, c_out/g, kh, kw)`` weight layout *is* the forward
  layout of the adjoint problem, so it passes through untouched).  The
  ``naive`` entry is instead a direct output-scatter — an independent
  oracle that shares no code with the adjoint route.

Every op exposes the same capability surface as the 2D registry:
``op_supports`` / ``fallback_chain_nd`` answer per-shape, and
``convolve_nd`` raises the same explicit ``ValueError`` on unsupported
combinations.
"""

from __future__ import annotations

import enum
import itertools

import numpy as np

from repro.baselines.registry import (
    FALLBACK_ORDER,
    ConvAlgorithm,
    convolve,
    get_entry,
)
from repro.baselines.registry import supports as algorithm_supports
from repro.core.ndim import (
    convnd_im2col_gemm,
    convnd_naive,
    convnd_polyhankel,
)
from repro.utils.shapes import (
    ConvShape,
    ConvShapeNd,
    normalize_padding_nd,
    normalize_tuple,
)
from repro.utils.validation import ensure_array, require


class ConvOp(enum.Enum):
    """Every convolution operation known to the library."""

    CONV1D = "conv1d"
    CONV2D = "conv2d"
    CONV3D = "conv3d"
    CONV_TRANSPOSE2D = "conv_transpose2d"


#: Spatial rank of each op's input (``x.ndim`` is this plus two).
OP_SPATIAL_RANK = {
    ConvOp.CONV1D: 1,
    ConvOp.CONV2D: 2,
    ConvOp.CONV3D: 3,
    ConvOp.CONV_TRANSPOSE2D: 2,
}

#: Algorithms with a genuinely N-dimensional implementation (conv3d).
_ND_ALGORITHMS = {
    ConvAlgorithm.POLYHANKEL: convnd_polyhankel,
    ConvAlgorithm.GEMM: convnd_im2col_gemm,
    ConvAlgorithm.NAIVE: convnd_naive,
}


def resolve_op(op: ConvOp | str) -> ConvOp:
    """Resolve an op (enum or its string value) to the enum member."""
    if isinstance(op, ConvOp):
        return op
    try:
        return ConvOp(op)
    except ValueError:
        names = [o.value for o in ConvOp]
        raise ValueError(f"unknown op {op!r}; one of {names}") from None


# ---------------------------------------------------------------------------
# Shape algebra
# ---------------------------------------------------------------------------

def lift_1d_shape(shape: ConvShapeNd) -> ConvShape:
    """The 2D problem a rank-1 *shape* lowers onto (singleton height)."""
    require(shape.ndim == 1, "lift_1d_shape needs a rank-1 problem")
    (lo, hi), = shape.pad_pairs
    return ConvShape(ih=1, iw=shape.extents[0], kh=1, kw=shape.kernel[0],
                     n=shape.n, c=shape.c, f=shape.f,
                     padding=(0, 0, lo, hi),
                     stride=(1, shape.stride_nd[0]),
                     dilation=(1, shape.dilation_nd[0]),
                     groups=shape.groups)


def conv_transpose2d_output_shape(x_shape, w_shape, padding=0, stride=1,
                                  dilation=1, groups: int = 1,
                                  output_padding=0) -> tuple:
    """Output shape ``(n, c_out, oh, ow)`` of a transposed convolution.

    Per axis: ``o = (i - 1) * s - (p_lo + p_hi) + d * (k - 1) + 1 + op``
    with ``0 <= op < s`` (the output padding resolves the ambiguity of
    which forward input extents map to the same conv output extent).
    """
    x_shape, w_shape = tuple(x_shape), tuple(w_shape)
    require(len(x_shape) == 4,
            "conv_transpose2d input must be (n, c, h, w)")
    require(len(w_shape) == 4,
            "conv_transpose2d weight must be (c_in, c_out/groups, kh, kw)")
    n, c_in = x_shape[:2]
    if x_shape[1] != w_shape[0]:
        raise ValueError(
            f"channel mismatch: input C={x_shape[1]}, transposed weight "
            f"expects C_in={w_shape[0]}"
        )
    require(c_in % groups == 0,
            f"input channels ({c_in}) must be divisible by groups "
            f"({groups})")
    c_out = w_shape[1] * groups
    # "same" makes no sense for a transposed conv; the forward-conv fit
    # check makes no sense either, so canonicalize parameters directly.
    require(padding != "same",
            'conv_transpose2d does not accept padding="same"')
    stride_nd = normalize_tuple(stride, 2, "stride")
    dilation_nd = normalize_tuple(dilation, 2, "dilation")
    pad_pairs = normalize_padding_nd(padding, x_shape[2:], w_shape[2:],
                                     stride, dilation)
    require(all(p >= 0 for pair in pad_pairs for p in pair),
            f"padding must be non-negative, got {padding!r}")
    require(all(s >= 1 for s in stride_nd),
            f"stride must be >= 1 in every axis, got {stride!r}")
    require(all(d >= 1 for d in dilation_nd),
            f"dilation must be >= 1 in every axis, got {dilation!r}")
    out_pad = normalize_tuple(output_padding, 2, "output_padding")
    extents = []
    for i, s, d, k, (lo, hi), op in zip(x_shape[2:], stride_nd,
                                        dilation_nd, w_shape[2:],
                                        pad_pairs, out_pad):
        require(0 <= op < s,
                f"output_padding must satisfy 0 <= output_padding < "
                f"stride, got {op} with stride {s}")
        o = (i - 1) * s - (lo + hi) + d * (k - 1) + 1 + op
        require(o >= 1,
                f"transposed output extent {o} is empty (input {i}, "
                f"stride {s}, padding {(lo, hi)}, kernel {k}, "
                f"dilation {d}); reduce padding")
        extents.append(o)
    return (n, c_out, *extents)


def transpose_internal_shape(x_shape, w_shape, padding=0, stride=1,
                             dilation=1, groups: int = 1,
                             output_padding=0) -> ConvShape:
    """The rank-2 conv problem a transposed conv actually executes.

    The adjoint route zero-stuffs the input by *stride*, applies a full
    ``eff_k - 1`` pad, and convolves at stride 1 with the forward
    dilation — this is that problem's :class:`ConvShape`, the thing
    ``supports`` predicates and the perfmodel must consult (the nominal
    tconv parameters describe a different, never-executed geometry).
    """
    n, c_in = tuple(x_shape)[:2]
    out_shape = conv_transpose2d_output_shape(
        x_shape, w_shape, padding, stride, dilation, groups, output_padding)
    stride_nd = normalize_tuple(stride, 2, "stride")
    dilation_nd = normalize_tuple(dilation, 2, "dilation")
    kh, kw = tuple(w_shape)[2:]
    dilated = tuple((i - 1) * s + 1
                    for i, s in zip(tuple(x_shape)[2:], stride_nd))
    eff_kh = dilation_nd[0] * (kh - 1) + 1
    eff_kw = dilation_nd[1] * (kw - 1) + 1
    return ConvShape(ih=dilated[0], iw=dilated[1], kh=kh, kw=kw, n=n,
                     c=c_in, f=out_shape[1],
                     padding=(eff_kh - 1, eff_kh - 1, eff_kw - 1,
                              eff_kw - 1),
                     stride=1, dilation=dilation_nd, groups=groups)


def transpose_weight_view(weight: np.ndarray, groups: int = 1) -> np.ndarray:
    """Per-output-channel view of a tconv weight for magnitude bounds.

    Reorders ``(c_in, c_out/g, kh, kw)`` to ``(c_out, c_in/g, kh, kw)``
    so axis 0 enumerates *output* channels, matching what the guard
    sentinel's per-filter L1 bound expects (the adjoint's spatial flip
    does not change absolute sums, so it is omitted).
    """
    c_in, f_per, kh, kw = weight.shape
    grouped = weight.reshape(groups, c_in // groups, f_per, kh, kw)
    return grouped.transpose(0, 2, 1, 3, 4).reshape(
        groups * f_per, c_in // groups, kh, kw)


def op_shape(op: ConvOp | str, x_shape, w_shape, padding=0, stride=1,
             dilation=1, groups: int = 1, output_padding=0):
    """The shape object guarding/dispatch decisions are made against.

    conv2d → :class:`ConvShape`; conv1d/conv3d → :class:`ConvShapeNd`;
    conv_transpose2d → the internal adjoint :class:`ConvShape` (see
    :func:`transpose_internal_shape`).
    """
    op = resolve_op(op)
    if op is ConvOp.CONV2D:
        return ConvShape.from_tensors(x_shape, w_shape, padding, stride,
                                      dilation, groups)
    if op is ConvOp.CONV_TRANSPOSE2D:
        return transpose_internal_shape(x_shape, w_shape, padding, stride,
                                        dilation, groups, output_padding)
    shape = ConvShapeNd.from_tensors(x_shape, w_shape, padding, stride,
                                     dilation, groups)
    rank = OP_SPATIAL_RANK[op]
    if shape.ndim != rank:
        raise ValueError(
            f"{op.value} expects spatial rank {rank}, got rank "
            f"{shape.ndim} (input shape {tuple(x_shape)})"
        )
    return shape


# ---------------------------------------------------------------------------
# Capability surface
# ---------------------------------------------------------------------------

def op_algorithms(op: ConvOp | str) -> list[ConvAlgorithm]:
    """Algorithms registered for *op* (ignoring per-shape limits)."""
    op = resolve_op(op)
    if op in (ConvOp.CONV1D, ConvOp.CONV2D, ConvOp.CONV_TRANSPOSE2D):
        from repro.baselines.registry import list_algorithms

        return list_algorithms()
    return list(_ND_ALGORITHMS)


def op_supports(op: ConvOp | str, algorithm: ConvAlgorithm | str,
                x_shape, w_shape, padding=0, stride=1, dilation=1,
                groups: int = 1, output_padding=0) -> bool:
    """Whether *algorithm* can run *op* on this problem."""
    op = resolve_op(op)
    algorithm = get_entry(algorithm).algorithm
    if op is ConvOp.CONV3D:
        return algorithm in _ND_ALGORITHMS
    shape = op_shape(op, x_shape, w_shape, padding, stride, dilation,
                     groups, output_padding)
    if op is ConvOp.CONV1D:
        shape = lift_1d_shape(shape)
    return algorithm_supports(algorithm, shape)


def fallback_chain_nd(op: ConvOp | str, x_shape, w_shape, padding=0,
                      stride=1, dilation=1, groups: int = 1,
                      output_padding=0,
                      primary: ConvAlgorithm | str | None = None
                      ) -> list[ConvAlgorithm]:
    """Ordered algorithms guarded execution may try for this op/problem.

    Same contract as :func:`repro.baselines.registry.fallback_chain`:
    *primary* first, then :data:`FALLBACK_ORDER`, deduplicated, keeping
    only algorithms the op supports on this shape.  Never empty — naive
    exists for every op.
    """
    op = resolve_op(op)
    ordered: list[ConvAlgorithm] = []
    if primary is not None:
        ordered.append(get_entry(primary).algorithm)
    for algo in FALLBACK_ORDER:
        if algo not in ordered:
            ordered.append(algo)
    return [algo for algo in ordered
            if op_supports(op, algo, x_shape, w_shape, padding, stride,
                           dilation, groups, output_padding)]


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def conv_transpose2d_naive(x: np.ndarray, weight: np.ndarray, padding=0,
                           stride=1, dilation=1, groups: int = 1,
                           output_padding=0) -> np.ndarray:
    """Direct scatter reference for transposed convolution.

    Each input pixel deposits a scaled (dilated) kernel into the output;
    cropping by *padding* happens on a pre-padded canvas.  Shares no
    machinery with the adjoint route, so it can referee it.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    out_shape = conv_transpose2d_output_shape(
        x.shape, weight.shape, padding, stride, dilation, groups,
        output_padding)
    n, c_in, ih, iw = x.shape
    _, f_per, kh, kw = weight.shape
    sh, sw = normalize_tuple(stride, 2, "stride")
    dh, dw = normalize_tuple(dilation, 2, "dilation")
    (pt, _), (pl, _) = normalize_padding_nd(padding, (ih, iw), (kh, kw),
                                            stride, dilation)
    c_per = c_in // groups
    canvas = np.zeros((n, out_shape[1],
                       out_shape[2] + pt + (kh - 1) * dh,
                       out_shape[3] + pl + (kw - 1) * dw))
    for ci, i, j in itertools.product(range(c_in), range(ih), range(iw)):
        g = ci // c_per
        filters = slice(g * f_per, (g + 1) * f_per)
        patch = x[:, ci, i, j][:, None, None, None] * weight[ci][None]
        canvas[:, filters,
               i * sh:i * sh + (kh - 1) * dh + 1:dh,
               j * sw:j * sw + (kw - 1) * dw + 1:dw] += patch
    return canvas[:, :, pt:pt + out_shape[2], pl:pl + out_shape[3]]


def conv_transpose2d_adjoint(x: np.ndarray, weight: np.ndarray, padding=0,
                             stride=1, dilation=1, groups: int = 1,
                             output_padding=0,
                             algorithm: ConvAlgorithm | str =
                             ConvAlgorithm.POLYHANKEL) -> np.ndarray:
    """Transposed conv via the backward-input adjoint (any 2D algorithm).

    The tconv weight ``(c_in, c_out/g, kh, kw)`` is exactly the forward
    layout of the adjoint conv (which maps ``c_out -> c_in``), so it
    passes straight through; the zero-stuffing/full-pad lowering lives
    in :func:`repro.nn.grad.conv2d_backward_input`.
    """
    from repro.nn.grad import conv2d_backward_input

    out_shape = conv_transpose2d_output_shape(
        np.shape(x), np.shape(weight), padding, stride, dilation, groups,
        output_padding)
    pad_pairs = normalize_padding_nd(padding, tuple(np.shape(x))[2:],
                                     tuple(np.shape(weight))[2:],
                                     stride, dilation)
    flat_pad = tuple(p for pair in pad_pairs for p in pair)
    return conv2d_backward_input(
        np.asarray(x, dtype=float), np.asarray(weight, dtype=float),
        input_shape=out_shape, padding=flat_pad,
        stride=normalize_tuple(stride, 2, "stride"),
        dilation=normalize_tuple(dilation, 2, "dilation"),
        groups=groups, algorithm=algorithm)


def convolve_nd(x: np.ndarray, weight: np.ndarray,
                op: ConvOp | str = ConvOp.CONV2D,
                algorithm: ConvAlgorithm | str = ConvAlgorithm.POLYHANKEL,
                padding=0, stride=1, dilation=1, groups: int = 1,
                output_padding=0, **kwargs) -> np.ndarray:
    """Run any convolution op with an explicitly chosen algorithm.

    The op-level analogue of :func:`repro.baselines.registry.convolve`:
    raises ``ValueError`` when *algorithm* cannot run *op* on this shape
    (mirroring cuDNN's NOT_SUPPORTED), otherwise dispatches to the
    op-specific route.  Engine *kwargs* (``strategy``, ``backend``,
    ``layout``, ...) flow through where the route accepts them.
    """
    op = resolve_op(op)
    entry = get_entry(algorithm)
    x_shape, w_shape = np.shape(x), np.shape(weight)
    if op is not ConvOp.CONV_TRANSPOSE2D:
        require(output_padding == 0 or output_padding == (0, 0),
                f"output_padding only applies to conv_transpose2d, "
                f"not {op.value}")
    if not op_supports(op, entry.algorithm, x_shape, w_shape, padding,
                       stride, dilation, groups, output_padding):
        raise ValueError(
            f"algorithm {entry.algorithm.value} does not support "
            f"{op.value} with this shape (input {tuple(x_shape)}, "
            f"weight {tuple(w_shape)}, stride={stride}, "
            f"dilation={dilation}, groups={groups})"
        )
    if op is ConvOp.CONV2D:
        return convolve(x, weight, entry.algorithm, padding, stride,
                        dilation, groups, **kwargs)
    if op is ConvOp.CONV1D:
        shape = op_shape(op, x_shape, w_shape, padding, stride, dilation,
                         groups)
        (lo, hi), = shape.pad_pairs
        from repro.core.ndim import lift_weight_1d

        x4 = np.asarray(x, dtype=float)[:, :, None, :]
        w4 = lift_weight_1d(np.asarray(weight, dtype=float))
        out = convolve(x4, w4, entry.algorithm, padding=(0, 0, lo, hi),
                       stride=(1, shape.stride_nd[0]),
                       dilation=(1, shape.dilation_nd[0]), groups=groups,
                       **kwargs)
        return out[:, :, 0, :]
    if op is ConvOp.CONV3D:
        fn = _ND_ALGORITHMS[entry.algorithm]
        if entry.algorithm is ConvAlgorithm.POLYHANKEL:
            engine_kwargs = {k: v for k, v in kwargs.items()
                             if k in ("fft_policy", "backend")}
            return fn(x, weight, padding, stride, dilation, groups,
                      **engine_kwargs)
        return fn(x, weight, padding, stride, dilation, groups)
    if entry.algorithm is ConvAlgorithm.NAIVE:
        return conv_transpose2d_naive(x, weight, padding, stride,
                                      dilation, groups, output_padding)
    return conv_transpose2d_adjoint(x, weight, padding, stride, dilation,
                                    groups, output_padding,
                                    algorithm=entry.algorithm)
