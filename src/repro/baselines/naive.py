"""Direct (definition-following) convolution.

The correctness reference every other algorithm is tested against.  It
follows the naive definition from Sec. 1 of the paper:

``conv2D(I, K)[ih, iw] = sum_kh sum_kw I[ih + kh, iw + kw] * K[kh, kw]``

(i.e. cross-correlation, the deep-learning convention used throughout the
paper and in cuDNN/PyTorch), extended to the full conv2d parameter space:
per-axis stride/dilation, asymmetric padding and channel groups.
"""

from __future__ import annotations

import numpy as np

from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array


def conv2d_naive(x: np.ndarray, weight: np.ndarray, padding=0,
                 stride: int | tuple = 1, dilation: int | tuple = 1,
                 groups: int = 1) -> np.ndarray:
    """Direct NCHW convolution; O(N*F*C/G*Oh*Ow*Kh*Kw), loops over output.

    Dilation subsamples the taps inside each window, stride moves the
    window per axis, and groups restrict each filter block to its channel
    block — all expressed directly on the padded input view so the code
    stays a transliteration of the definition.
    """
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride, dilation, groups)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride,
                                   dilation, groups)

    xp = pad2d(x, shape.pad_tblr)
    sh, sw = shape.stride_hw
    dh, dw = shape.dilation_hw
    g, c_per, f_per = shape.groups, shape.group_channels, shape.group_filters
    xg = xp.reshape(shape.n, g, c_per, *xp.shape[-2:])
    wg = weight.reshape(g, f_per, c_per, shape.kh, shape.kw)
    out = np.zeros(shape.output_shape(), dtype=float)
    out_g = out.reshape(shape.n, g, f_per, shape.oh, shape.ow)
    for i in range(shape.oh):
        for j in range(shape.ow):
            top = i * sh
            left = j * sw
            patch = xg[:, :, :, top: top + shape.eff_kh: dh,
                       left: left + shape.eff_kw: dw]
            out_g[:, :, :, i, j] = np.einsum("ngchw,gfchw->ngf", patch, wg)
    return out
