"""Direct (definition-following) convolution.

The correctness reference every other algorithm is tested against.  It
follows the naive definition from Sec. 1 of the paper:

``conv2D(I, K)[ih, iw] = sum_kh sum_kw I[ih + kh, iw + kw] * K[kh, kw]``

(i.e. cross-correlation, the deep-learning convention used throughout the
paper and in cuDNN/PyTorch).
"""

from __future__ import annotations

import numpy as np

from repro.hankel.im2col_view import pad2d
from repro.utils.shapes import ConvShape
from repro.utils.validation import check_conv_inputs, ensure_array


def conv2d_naive(x: np.ndarray, weight: np.ndarray, padding: int = 0,
                 stride: int = 1) -> np.ndarray:
    """Direct NCHW convolution; O(N*F*C*Oh*Ow*Kh*Kw), loops over output."""
    x = ensure_array(x, "x", dtype=float)
    weight = ensure_array(weight, "weight", dtype=float)
    check_conv_inputs(x, weight, padding, stride)
    shape = ConvShape.from_tensors(x.shape, weight.shape, padding, stride)

    xp = pad2d(x, padding)
    out = np.zeros(shape.output_shape(), dtype=float)
    for i in range(shape.oh):
        for j in range(shape.ow):
            top = i * stride
            left = j * stride
            patch = xp[:, :, top: top + shape.kh, left: left + shape.kw]
            out[:, :, i, j] = np.einsum("nchw,fchw->nf", patch, weight)
    return out
