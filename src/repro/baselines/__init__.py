"""Comparator algorithms: every method the paper evaluates against."""

from repro.baselines.fft2d import conv2d_fft, irfft2, rfft2
from repro.baselines.fft_tiling import conv2d_fft_tiling
from repro.baselines.finegrain_fft import conv2d_finegrain_fft
from repro.baselines.im2col_gemm import conv2d_im2col_gemm
from repro.baselines.implicit_gemm import (
    conv2d_implicit_gemm,
    conv2d_implicit_precomp_gemm,
)
from repro.baselines.naive import conv2d_naive
from repro.baselines.registry import (
    AlgorithmEntry,
    ConvAlgorithm,
    convolve,
    get_entry,
    list_algorithms,
    supports,
)
from repro.baselines.winograd import (
    conv2d_winograd,
    conv2d_winograd_nonfused,
    winograd_correlate_1d,
    winograd_transforms,
)

__all__ = [
    "ConvAlgorithm",
    "AlgorithmEntry",
    "convolve",
    "get_entry",
    "list_algorithms",
    "supports",
    "conv2d_naive",
    "conv2d_im2col_gemm",
    "conv2d_implicit_gemm",
    "conv2d_implicit_precomp_gemm",
    "conv2d_fft",
    "conv2d_fft_tiling",
    "conv2d_winograd",
    "conv2d_winograd_nonfused",
    "conv2d_finegrain_fft",
    "winograd_transforms",
    "winograd_correlate_1d",
    "rfft2",
    "irfft2",
]
