"""Plain-text reporting for experiment reproductions.

Each figure generator returns a :class:`SweepResult`; this module renders
it as the kind of table the paper's figures plot, and computes the summary
statistics the paper quotes (who wins where, max speedup over the next
best method).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import ConvAlgorithm


@dataclass(frozen=True)
class SweepResult:
    """One figure panel: a metric per (x value, method)."""

    title: str
    x_name: str
    x_values: tuple
    methods: tuple[ConvAlgorithm, ...]
    values: dict[tuple, float]  # (x, method) -> metric
    metric: str = "time_ms"

    def value(self, x, method: ConvAlgorithm) -> float:
        return self.values[(x, method)]

    def winner(self, x) -> ConvAlgorithm:
        """Method with the smallest metric at *x*."""
        present = [m for m in self.methods if (x, m) in self.values]
        return min(present, key=lambda m: self.values[(x, m)])

    def winners(self) -> dict:
        return {x: self.winner(x) for x in self.x_values}

    def win_count(self, method: ConvAlgorithm) -> int:
        return sum(1 for x in self.x_values if self.winner(x) is method)

    def speedup_over_next_best(self, x) -> float:
        """(next best) / (winner) - 1 at *x* — the paper's speedup metric."""
        ranked = sorted(
            self.values[(x, m)] for m in self.methods
            if (x, m) in self.values
        )
        if len(ranked) < 2 or ranked[0] == 0:
            return 0.0
        return ranked[1] / ranked[0] - 1.0

    def max_speedup_for(self, method: ConvAlgorithm) -> float:
        """Max speedup-over-next-best at points where *method* wins."""
        best = 0.0
        for x in self.x_values:
            if self.winner(x) is method:
                best = max(best, self.speedup_over_next_best(x))
        return best

    def average_speedup_for(self, method: ConvAlgorithm) -> float:
        """Mean of (next best / method) across ALL x — Fig. 6's metric."""
        ratios = []
        for x in self.x_values:
            others = sorted(
                self.values[(x, m)] for m in self.methods
                if m is not method and (x, m) in self.values
            )
            mine = self.values.get((x, method))
            if mine and others:
                ratios.append(others[0] / mine)
        return sum(ratios) / len(ratios) if ratios else 0.0


def format_table(result: SweepResult, precision: int = 3) -> str:
    """Render a SweepResult as an aligned text table with a winner column."""
    headers = ([result.x_name] + [m.value for m in result.methods]
               + ["winner"])
    rows = []
    for x in result.x_values:
        cells = [str(x)]
        for m in result.methods:
            v = result.values.get((x, m))
            cells.append("-" if v is None else f"{v:.{precision}f}")
        cells.append(result.winner(x).value)
        rows.append(cells)

    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    lines = [result.title,
             "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    return "\n".join(lines)


def summarize(result: SweepResult,
              hero: ConvAlgorithm = ConvAlgorithm.POLYHANKEL) -> str:
    """The paper's caption-style summary line for a sweep."""
    wins = result.win_count(hero)
    total = len(result.x_values)
    max_speedup = result.max_speedup_for(hero) * 100
    return (f"{hero.value} wins {wins} of {total} {result.x_name} points; "
            f"max speedup over next best = {max_speedup:.1f}%")
