"""Table 2 / Table 3 reproduction: symbolic complexity vs counted cost.

The paper's complexity tables are closed-form expressions; this module
evaluates them alongside the concrete counter models over a shape sweep and
reports how tightly each model tracks its expression (they should agree up
to the constant factors the expressions drop).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.baselines.registry import ConvAlgorithm as A
from repro.perfmodel.counters import count
from repro.utils.shapes import ConvShape


def _log(v: float) -> float:
    return math.log2(max(v, 2.0))


# -- the paper's Table 2 expressions (per image, per channel/filter where
# the table leaves those implicit) ------------------------------------------


def time_im2col_mm(s: ConvShape) -> float:
    """Kh x Kw x Oh x Ow."""
    return s.kernel_elems * s.output_elems


def time_traditional_fft(s: ConvShape) -> float:
    """(Iw+Kw)(Ih+Kh)(log(Ih+Kh)+log(Iw+Kw)) * 2 + elementwise + IFFT."""
    plane = (s.padded_iw + s.kw) * (s.padded_ih + s.kh)
    logs = _log(s.padded_ih + s.kh) + _log(s.padded_iw + s.kw)
    return plane * logs * 2 + plane + plane * logs


def time_finegrain_fft(s: ConvShape) -> float:
    """Ih*2Iw log(2Iw) + Kh*2Iw log(2Iw) + Oh*Kh*Iw + Oh*2Iw log(2Iw)."""
    row = 2 * s.padded_iw * _log(2 * s.padded_iw)
    return (s.padded_ih * row + s.kh * row
            + s.oh * s.kh * s.padded_iw + s.oh * row)


def time_polyhankel(s: ConvShape) -> float:
    """3 * (Ih*Iw + Kh*Iw) log(Ih*Iw + Kh*Iw) + (Ih*Iw + Kh*Iw)."""
    padded = s.padded_ih * s.padded_iw + s.kh * s.padded_iw
    return 3 * padded * _log(padded) + padded


# -- Table 3 expressions ------------------------------------------------------


def space_im2col_mm(s: ConvShape) -> float:
    return s.kernel_elems * s.output_elems


def space_traditional_fft(s: ConvShape) -> float:
    return 3 * (s.padded_ih + s.kh) * (s.padded_iw + s.kw)


def space_finegrain_fft(s: ConvShape) -> float:
    return 2 * s.padded_iw * (s.padded_ih + s.kh + s.oh)


def space_polyhankel(s: ConvShape) -> float:
    return 3 * (s.padded_ih * s.padded_iw + s.kh * s.padded_iw)


@dataclass(frozen=True)
class ComplexityRow:
    """One method's symbolic expression and concrete counter accessor."""

    method: A
    paper_expression: str
    symbolic: Callable[[ConvShape], float]
    measured: Callable[[ConvShape], float]


TIME_ROWS: tuple[ComplexityRow, ...] = (
    ComplexityRow(A.GEMM, "Kh*Kw*Oh*Ow", time_im2col_mm,
                  lambda s: count(A.GEMM, s).flops),
    ComplexityRow(A.FFT, "(Iw+Kw)(Ih+Kh)(log(Ih+Kh)+log(Iw+Kw))*3 + ew",
                  time_traditional_fft,
                  lambda s: count(A.FFT, s).flops),
    ComplexityRow(A.FINEGRAIN_FFT,
                  "Ih*2Iw*log(2Iw) + Kh*2Iw*log(2Iw) + Oh*Kh*Iw + IFFT",
                  time_finegrain_fft,
                  lambda s: count(A.FINEGRAIN_FFT, s).flops),
    ComplexityRow(A.POLYHANKEL,
                  "3*(Ih*Iw+Kh*Iw)*log(Ih*Iw+Kh*Iw) + (Ih*Iw+Kh*Iw)",
                  time_polyhankel,
                  lambda s: count(A.POLYHANKEL, s).flops),
)

SPACE_ROWS: tuple[ComplexityRow, ...] = (
    ComplexityRow(A.GEMM, "Kh*Kw*Oh*Ow", space_im2col_mm,
                  lambda s: count(A.GEMM, s).workspace_bytes / 4),
    ComplexityRow(A.FFT, "3*(Ih+Kh)(Iw+Kw)", space_traditional_fft,
                  lambda s: count(A.FFT, s).workspace_bytes / 8),
    ComplexityRow(A.FINEGRAIN_FFT, "2Iw*(Ih + Kh + Oh)",
                  space_finegrain_fft,
                  lambda s: count(A.FINEGRAIN_FFT, s).workspace_bytes / 8),
    ComplexityRow(A.POLYHANKEL, "3*(Ih*Iw + Kh*Iw)", space_polyhankel,
                  lambda s: count(A.POLYHANKEL, s).workspace_bytes / 8),
)


def scaling_ratio(row: ComplexityRow, small: ConvShape,
                  large: ConvShape) -> tuple[float, float]:
    """(symbolic growth, measured growth) between two shapes.

    If the counter model implements the table's expression, the two growth
    factors agree up to the constants the asymptotic expression drops.
    """
    sym = row.symbolic(large) / row.symbolic(small)
    meas = row.measured(large) / row.measured(small)
    return sym, meas


def complexity_report(rows: tuple[ComplexityRow, ...],
                      shapes: list[ConvShape]) -> str:
    """Text table of symbolic-vs-measured growth along a shape sweep."""
    base = shapes[0]
    lines = ["method              expression".ljust(72) + "growth sym/meas"]
    for row in rows:
        growth = [scaling_ratio(row, base, s) for s in shapes[1:]]
        ratios = "  ".join(f"{sym:.1f}/{meas:.1f}" for sym, meas in growth)
        lines.append(
            f"{row.method.value:<18}  {row.paper_expression:<50}  {ratios}"
        )
    return "\n".join(lines)
