"""Generators for every figure in the paper's evaluation (Sec. 4).

Each ``figN_*`` function runs the corresponding sweep on the simulated GPUs
and returns one :class:`~repro.experiments.report.SweepResult` per panel.
``benchmarks/bench_figN_*.py`` executes these, prints the paper-style
tables, and asserts the figure-level claims.
"""

from __future__ import annotations

from repro.baselines.registry import ConvAlgorithm as A
from repro.baselines.registry import supports
from repro.experiments.config import (
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    Fig7Config,
)
from repro.experiments.report import SweepResult
from repro.nn.network import profile_conv_time
from repro.nn.synthetic import synthetic_network
from repro.perfmodel.counters import count
from repro.perfmodel.device import get_device
from repro.perfmodel.timing import simulate_ms
from repro.utils.shapes import ConvShape


def fig3_input_sweep(device: str,
                     config: Fig3Config | None = None) -> SweepResult:
    """Fig. 3: API time vs input size on one device."""
    config = config or Fig3Config()
    values = {}
    for size in config.input_sizes:
        shape = ConvShape(ih=size, iw=size, kh=config.kernel,
                          kw=config.kernel, n=config.batch,
                          c=config.channels, f=config.filters,
                          padding=config.padding)
        for method in config.methods:
            if supports(method, shape):
                values[(size, method)] = simulate_ms(method, shape, device)
    return SweepResult(
        title=f"Fig. 3 — time (ms) vs input size on {get_device(device).name}"
              f" (kernel {config.kernel}, batch {config.batch})",
        x_name="input_size", x_values=config.input_sizes,
        methods=config.methods, values=values,
    )


def fig4_kernel_sweep(device: str,
                      config: Fig4Config | None = None) -> SweepResult:
    """Fig. 4: API time vs kernel size on one device.

    Winograd contributes its single supported point (kernel 3), mirroring
    the figure's lone Winograd marker.
    """
    config = config or Fig4Config()
    methods = config.methods + (A.WINOGRAD,)
    values = {}
    for k in config.kernel_sizes:
        shape = ConvShape(ih=config.input_size, iw=config.input_size,
                          kh=k, kw=k, n=config.batch, c=config.channels,
                          f=config.filters)
        for method in config.methods:
            if supports(method, shape):
                values[(k, method)] = simulate_ms(method, shape, device)
    # The lone Winograd point.
    wk = config.winograd_kernel
    wino_shape = ConvShape(ih=config.input_size, iw=config.input_size,
                           kh=wk, kw=wk, n=config.batch, c=config.channels,
                           f=config.filters)
    if wk in config.kernel_sizes:
        values[(wk, A.WINOGRAD)] = simulate_ms(A.WINOGRAD, wino_shape,
                                               device)
    return SweepResult(
        title=f"Fig. 4 — time (ms) vs kernel size on "
              f"{get_device(device).name} (input {config.input_size}, "
              f"batch {config.batch})",
        x_name="kernel_size", x_values=config.kernel_sizes,
        methods=methods, values=values,
    )


def fig5_channel_sweep(config: Fig5Config | None = None) -> SweepResult:
    """Fig. 5: API time vs channel count, all cuDNN variants, 3090Ti."""
    config = config or Fig5Config()
    values = {}
    for c in config.channel_counts:
        shape = ConvShape(ih=config.input_size, iw=config.input_size,
                          kh=config.kernel, kw=config.kernel,
                          n=config.batch, c=c, f=c,
                          padding=config.padding)
        for method in config.methods:
            if supports(method, shape):
                values[(c, method)] = simulate_ms(method, shape,
                                                  config.device)
    return SweepResult(
        title=f"Fig. 5 — time (ms) vs channel count on "
              f"{get_device(config.device).name} (input "
              f"{config.input_size}, kernel {config.kernel})",
        x_name="channels", x_values=config.channel_counts,
        methods=config.methods, values=values,
    )


def fig6_network_sweep(device: str,
                       config: Fig6Config | None = None) -> SweepResult:
    """Fig. 6: accumulated conv-operator time in 20-layer synthetic nets.

    Averages over several network seeds (the paper's "various layer
    designs"), with one algorithm forced network-wide per series.
    """
    config = config or Fig6Config()
    values = {}
    for size in config.input_sizes:
        networks = [synthetic_network(size, seed=s) for s in config.seeds]
        for method in config.methods:
            totals = []
            for net in networks:
                profile = profile_conv_time(
                    net, (config.batch, 3, size, size), device,
                    algorithm=method, iterations=config.iterations,
                )
                totals.append(profile.total_ms)
            values[(size, method)] = sum(totals) / len(totals)
    return SweepResult(
        title=f"Fig. 6 — accumulated conv time (ms) in 20-layer synthetic "
              f"networks on {get_device(device).name} "
              f"({config.iterations} iterations)",
        x_name="input_size", x_values=config.input_sizes,
        methods=config.methods, values=values,
    )


def fig7_counters(config: Fig7Config | None = None
                  ) -> tuple[SweepResult, SweepResult]:
    """Fig. 7: (FLOPs, memory transactions) vs input size on A10G."""
    config = config or Fig7Config()
    flops, transactions = {}, {}
    for size in config.input_sizes:
        shape = ConvShape(ih=size, iw=size, kh=config.kernel,
                          kw=config.kernel, n=config.batch,
                          c=config.channels, f=config.filters,
                          padding=config.padding)
        for method in config.methods:
            if supports(method, shape):
                report = count(method, shape)
                flops[(size, method)] = report.flops
                transactions[(size, method)] = report.transactions
    common = dict(x_name="input_size", x_values=config.input_sizes,
                  methods=config.methods)
    return (
        SweepResult(title="Fig. 7a — floating point operations vs input "
                          "size (A10G)",
                    values=flops, metric="flops", **common),
        SweepResult(title="Fig. 7b — 32B memory transactions vs input size "
                          "(A10G)",
                    values=transactions, metric="transactions", **common),
    )
