"""Experiment configurations for every table and figure in the paper.

The paper states some workload parameters explicitly (kernel 5 and batch 128
for Fig. 3; input 112, kernel 3, channels 1-128 for Fig. 5; 20-layer
networks for Fig. 6) and leaves others unstated.  Where a parameter is not
given we fix a documented choice here, so every reproduction is fully
deterministic and auditable.  See EXPERIMENTS.md for the paper-vs-measured
record.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import ConvAlgorithm as A

#: Methods plotted in Figs. 3, 4 and 7 ("cudnn GEMM" is cuDNN's
#: IMPLICIT_PRECOMP_GEMM per Sec. 4; we show our explicit-GEMM model for it
#: as well in the table output).
FIG3_METHODS: tuple[A, ...] = (
    A.GEMM, A.FFT, A.WINOGRAD, A.FINEGRAIN_FFT, A.POLYHANKEL,
)

#: Fig. 5 compares against *all* cuDNN variants.
FIG5_METHODS: tuple[A, ...] = (
    A.GEMM, A.IMPLICIT_GEMM, A.IMPLICIT_PRECOMP_GEMM, A.FFT, A.FFT_TILING,
    A.WINOGRAD, A.WINOGRAD_NONFUSED, A.POLYHANKEL,
)

#: Fig. 6 uses the methods PyTorch can be forced to (Winograd included).
FIG6_METHODS: tuple[A, ...] = (A.GEMM, A.FFT, A.WINOGRAD, A.POLYHANKEL)

DEVICES: tuple[str, ...] = ("3090ti", "a10g", "v100")


@dataclass(frozen=True)
class Fig3Config:
    """API time vs input size (Sec. 4.1, Fig. 3).

    Paper-stated: kernel 5, batch 128, input sizes 4..224.  Chosen: RGB
    input (c=3), 16 filters, same-padding 2; sizes start at 8 so the 5x5
    kernel fits every padded input.
    """

    input_sizes: tuple[int, ...] = (8, 16, 32, 48, 64, 96, 112, 128, 160,
                                    192, 224)
    kernel: int = 5
    batch: int = 128
    channels: int = 3
    filters: int = 16
    padding: int = 2
    methods: tuple[A, ...] = FIG3_METHODS


@dataclass(frozen=True)
class Fig4Config:
    """API time vs kernel size (Sec. 4.1, Fig. 4).

    Paper-stated: kernel sizes 4..20ish; Winograd has a single point
    (cuDNN supports only 3x3).  Chosen: input 96 (keeps the cuDNN FFT's
    power-of-two padding stable across the whole sweep, isolating the
    kernel-size effect), batch 128, c=3, f=16; the sweep extends to 25 so
    the FFT/PolyHankel crossover is visible (our calibrated crossover sits
    later than the paper's ~15, see EXPERIMENTS.md).
    """

    kernel_sizes: tuple[int, ...] = (3, 4, 6, 8, 10, 12, 14, 16, 18, 20,
                                     22, 25)
    input_size: int = 96
    batch: int = 128
    channels: int = 3
    filters: int = 16
    winograd_kernel: int = 3  # the lone Winograd data point
    methods: tuple[A, ...] = (A.GEMM, A.FFT, A.FINEGRAIN_FFT, A.POLYHANKEL)


@dataclass(frozen=True)
class Fig5Config:
    """API time vs channel count (Sec. 4.1, Fig. 5).

    Paper-stated: input 112x112, kernel 3x3, channels 1..128, 3090Ti, all
    cuDNN methods.  Chosen: batch 32, filters = channels.
    """

    channel_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)
    input_size: int = 112
    kernel: int = 3
    batch: int = 32
    padding: int = 1
    device: str = "3090ti"
    methods: tuple[A, ...] = FIG5_METHODS


@dataclass(frozen=True)
class Fig6Config:
    """End-to-end network time vs input size (Sec. 4.2, Fig. 6).

    Paper-stated: 20-layer synthetic networks with varied designs, input
    sizes up to ~112, accumulated conv-operator time.  Chosen: batch 32,
    500 accumulation iterations, network seeds 0-2 averaged.
    """

    input_sizes: tuple[int, ...] = (16, 32, 48, 64, 80, 96, 112)
    batch: int = 32
    iterations: int = 500
    seeds: tuple[int, ...] = (0, 1, 2)
    methods: tuple[A, ...] = FIG6_METHODS


@dataclass(frozen=True)
class Fig7Config:
    """Performance counters vs input size on A10G (Sec. 4.3, Fig. 7).

    Same sweep as Fig. 3, profiled for FLOPs and memory transactions.
    """

    input_sizes: tuple[int, ...] = (8, 16, 32, 48, 64, 96, 112, 128, 160,
                                    192, 224)
    kernel: int = 5
    batch: int = 128
    channels: int = 3
    filters: int = 16
    padding: int = 2
    device: str = "a10g"
    methods: tuple[A, ...] = FIG3_METHODS
