"""Reproductions of every table and figure in the paper's evaluation."""

from repro.experiments.config import (
    DEVICES,
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    Fig7Config,
)
from repro.experiments.figures import (
    fig3_input_sweep,
    fig4_kernel_sweep,
    fig5_channel_sweep,
    fig6_network_sweep,
    fig7_counters,
)
from repro.experiments.report import SweepResult, format_table, summarize
from repro.experiments.tables import (
    SPACE_ROWS,
    TIME_ROWS,
    complexity_report,
    scaling_ratio,
)

__all__ = [
    "DEVICES",
    "Fig3Config", "Fig4Config", "Fig5Config", "Fig6Config", "Fig7Config",
    "fig3_input_sweep", "fig4_kernel_sweep", "fig5_channel_sweep",
    "fig6_network_sweep", "fig7_counters",
    "SweepResult", "format_table", "summarize",
    "TIME_ROWS", "SPACE_ROWS", "complexity_report", "scaling_ratio",
]
