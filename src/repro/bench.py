"""JSON wall-clock benchmark harness (``python -m repro bench``).

Runs a fixed suite of CPU shapes through the PolyHankel execution engine
and records, per case:

- ``first_call_ms``  — cold call: plan construction + weight transform;
- ``seed_ms``        — steady state of the pre-engine implementation,
  replicated faithfully: pow2 FFT sizes, the weight re-transformed on
  every call (with the seed's per-filter construction loops), ``np.pad``
  padding and advanced-index output gather;
- ``uncached_ms``    — steady state at the auto FFT policy with the
  spectrum cache disabled (isolates the caching win from the policy win);
- ``cached_ms``      — steady state with the spectrum cache enabled;
- ``layer_cached_ms``— steady state through ``nn.Conv2d`` (the full
  engine path: plan cache + layer spectrum cache);
- ``workers_ms``     — cached steady state with batch thread-chunking;
- ``speedup``        — ``seed_ms / cached_ms`` (repeated same-shape calls
  versus the seed implementation);
- ``cache_speedup``  — ``uncached_ms / cached_ms``.

Each case additionally records deterministic runtime counter totals (FFT
invocations and row-transforms of one cached steady-state call, measured
through :mod:`repro.observe`), so regressions that add work to the hot
path are caught even when the machine hides them.  Schema 3 adds
``guard_fallbacks``: the ``guard.fallback`` count of one guard-enabled
steady-state call, which must stay 0 on a healthy install — a nonzero
value means the supervised chain had to route around the primary
algorithm, i.e. the engine is silently degraded.

``--inject`` switches the harness from timing to a recovery drill: every
suite case runs guard-enabled under each fault kind of
:mod:`repro.guard.faults` and must still reproduce the naive reference;
the exit code reports any case the chain failed to recover.

Results are written as ``BENCH_<date>.json`` so successive PRs can diff
wall-clock numbers against a committed baseline — and ``--check
BASELINE.json`` turns that diff into a noise-aware CI gate (see
:mod:`repro.observe.regression`): flagged cases are re-measured once with
doubled repeats before the verdict, and a nonzero exit reports a genuine
regression.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import time
from dataclasses import dataclass

import numpy as np

# v2 added per-case deterministic FFT counters; v3 guard_fallbacks; v4 the
# resolved spectrum layout, packed by_kind counters (the interleaved layout
# runs complex fft/ifft instead of rfft/irfft) and roofline_pct; v5 the
# N-dimensional operator presets (conv1d/conv3d/conv_transpose2d rows in
# ``results``, gated by the same wall/counter/guard metrics); v6 the
# ``cluster`` section: the Poisson open-loop saturation sweep of the
# multi-process shared-memory tier (served-rps and p50/p99 per worker
# count, with the 2-worker scale-out floor gated where cpu_count >= 2);
# v7 the ``overload`` section: the offered-load sweep (0.5x-3x calibrated
# capacity) of the deadline-propagating, admission-bounded server —
# goodput, shed/reject split and completed-latency tail per multiplier,
# with the goodput-at-2x floor (min_goodput_pct) as the CI contract;
# v8 the ``selection`` section: a seeded, roofline-model-driven replay of
# the online algorithm-selection bandit per drill key — regret vs. the
# modeled oracle (ceiling max_regret_pct travels with the entry) and
# convergence onto the oracle's tie set, deterministic so never
# re-measured.
SCHEMA_VERSION = 8


@dataclass(frozen=True)
class BenchCase:
    """One (geometry, strategy, backend) point of the suite."""

    name: str
    size: int
    kernel: int
    batch: int
    channels: int
    filters: int
    padding: int
    strategy: str = "sum"
    backend: str = "numpy"
    stride: int = 1
    dilation: int = 1
    groups: int = 1
    heavy: bool = False  # skipped in --smoke runs

    @property
    def extended(self) -> bool:
        """Outside the parameter space the seed implementation supported
        (the seed column is only defined for non-extended cases)."""
        return (self.stride, self.dilation, self.groups) != (1, 1, 1)


SUITE: tuple[BenchCase, ...] = (
    BenchCase("conv64_sum_numpy", 64, 5, 4, 3, 8, 2),
    BenchCase("conv16_sum_numpy", 16, 3, 4, 3, 8, 1),
    BenchCase("conv16_merge_numpy", 16, 3, 4, 3, 8, 1, strategy="merge"),
    BenchCase("conv32_sum_numpy_c16", 32, 3, 4, 16, 16, 1, heavy=True),
    BenchCase("conv16_sum_builtin", 16, 3, 4, 3, 8, 1, backend="builtin"),
    BenchCase("conv64_sum_builtin", 64, 5, 4, 3, 8, 2, backend="builtin",
              heavy=True),
    # ResNet-style strided stage: the 3x3/s=2 downsampling convolution.
    BenchCase("resnet_stage_s2", 32, 3, 4, 8, 16, 1, stride=2),
    # MobileNet-style depthwise layer: groups == channels.
    BenchCase("mobilenet_depthwise", 32, 3, 4, 16, 16, 1, groups=16),
    # Dilated (atrous) context layer, DeepLab-style.
    BenchCase("dilated_d2", 32, 3, 4, 8, 8, 2, dilation=2, heavy=True),
)


@dataclass(frozen=True)
class NdBenchCase:
    """One N-dimensional operator preset (conv1d/conv3d/conv_transpose2d).

    Each preset verifies the routed engine against an independent naive
    reference, records cold/steady wall clock, the deterministic FFT
    counters of one cached call, one guard-enabled call's fallback count,
    and the roofline percentage against the operator's cost model.  For
    ``conv1d`` and ``conv3d`` the measured counters are additionally
    asserted equal to the closed-form predictor — the 1D op must hit the
    2D engine's caches (spectrum included), and the 3D plan's call
    structure is fixed.
    """

    name: str
    op: str  # "conv1d" | "conv3d" | "conv_transpose2d"
    x_shape: tuple
    w_shape: tuple
    padding: int | tuple = 0
    stride: int | tuple = 1
    dilation: int | tuple = 1
    groups: int = 1
    output_padding: int | tuple = 0
    heavy: bool = False  # skipped in --smoke runs


ND_SUITE: tuple[NdBenchCase, ...] = (
    # Audio-style temporal convolution: rides the cached 2D engine via
    # the singleton-height lowering, so its counters follow the packed
    # 2D predictor on the lifted shape.
    NdBenchCase("audio_1d", "conv1d", (4, 8, 256), (16, 8, 9), padding=4),
    # Tiny video stack through the rank-generic single-block plan.
    NdBenchCase("video_3d_tiny", "conv3d", (2, 4, 8, 12, 12),
                (8, 4, 3, 3, 3), padding=1),
    # Decoder upsampling stage: stride-2 transposed convolution, run as
    # the zero-stuffed adjoint of a stride-1 forward conv.
    NdBenchCase("decoder_tconv", "conv_transpose2d", (2, 8, 12, 12),
                (8, 4, 4, 4), padding=1, stride=2),
)


def run_nd_case(case: NdBenchCase, repeats: int = 25) -> dict:
    """Measure one N-dimensional operator preset.

    Returns an entry shaped like :func:`run_case`'s (same gate metrics:
    ``cached_ms``, ``fft_calls``/``fft_rows``, ``guard_fallbacks``) with
    the seed/uncached/layer/workers columns absent — those paths only
    exist for the native 2D engine.
    """
    from repro.baselines.ndops import (
        ConvOp,
        conv_transpose2d_naive,
        convolve_nd,
        lift_1d_shape,
        transpose_internal_shape,
    )
    from repro.core import multichannel as mc
    from repro.core.ndim import clear_ndplan_cache, convnd_naive
    from repro.guard.chain import reset_guard
    from repro.guard.state import guarded
    from repro.nn import functional as F
    from repro.observe import tracing
    from repro.observe.registry import counters as _counters
    from repro.observe.registry import fft_call_totals
    from repro.perfmodel.engine import (
        predict_fft_counters,
        predict_fft_counters_nd,
        roofline_pct,
        roofline_pct_nd,
    )
    from repro.utils.shapes import ConvShapeNd

    op = ConvOp(case.op)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(case.x_shape)
    w = rng.standard_normal(case.w_shape)
    params = dict(padding=case.padding, stride=case.stride,
                  dilation=case.dilation, groups=case.groups)

    def call():
        return convolve_nd(x, w, op=op, output_padding=case.output_padding,
                           **params)

    # Cold: every plan/spectrum cache emptied first.
    mc.clear_plan_cache()
    mc.clear_spectrum_cache()
    clear_ndplan_cache()
    start = time.perf_counter()
    out = call()
    first_call_ms = (time.perf_counter() - start) * 1e3

    # Verify against an independent reference before timing anything.
    if op is ConvOp.CONV_TRANSPOSE2D:
        want = conv_transpose2d_naive(x, w, output_padding=case.
                                      output_padding, **params)
    else:
        want = convnd_naive(x, w, **params)
    if not np.allclose(want, out, atol=1e-8):
        raise AssertionError(f"engine diverged from naive on {case.name}")

    times = _time_interleaved({"cached": call}, repeats)
    cached_ms = times["cached"]

    # Deterministic counters of one cached steady-state call.
    _counters.clear("fft.")
    with tracing():
        call()
    totals = fft_call_totals()
    case_counters = {
        "fft_calls": sum(v["calls"] for v in totals.values()),
        "fft_rows": sum(v["rows"] for v in totals.values()),
        "by_kind": {kind: v["calls"] for kind, v in sorted(totals.items())},
    }

    # The predictor assertion: the 1D lowering must hit the 2D engine's
    # caches and the 3D plan's call structure is closed-form.  (The
    # transposed op's counters depend on the backward-path weight flip,
    # which defeats the spectrum cache by design; recorded ungated.)
    layout = None
    predicted = None
    if op is ConvOp.CONV1D:
        lifted = lift_1d_shape(ConvShapeNd.from_tensors(
            case.x_shape, case.w_shape, **params))
        layout = mc.get_plan(lifted).layout
        predicted = predict_fft_counters(lifted, "sum", layout)
        pct = roofline_pct(lifted, cached_ms, layout)
    elif op is ConvOp.CONV3D:
        shape_nd = ConvShapeNd.from_tensors(case.x_shape, case.w_shape,
                                            **params)
        predicted = predict_fft_counters_nd(shape_nd)
        pct = roofline_pct_nd(shape_nd, cached_ms)
    else:
        internal = transpose_internal_shape(
            case.x_shape, case.w_shape,
            output_padding=case.output_padding, **params)
        layout = mc.get_plan(internal).layout
        pct = roofline_pct(internal, cached_ms, layout)
    if predicted is not None:
        got = {k: case_counters[k] for k in predicted}
        if got != predicted:
            raise AssertionError(
                f"{case.name}: measured FFT counters {got} diverged from "
                f"the closed-form prediction {predicted}")

    # One guard-enabled call: the supervised chain must not fall back.
    reset_guard()
    op_fn = {ConvOp.CONV1D: F.conv1d, ConvOp.CONV3D: F.conv3d}.get(op)
    with guarded():
        if op_fn is not None:
            op_fn(x, w, **params)
        else:
            F.conv_transpose2d(x, w, output_padding=case.output_padding,
                               **params)
    case_counters["guard_fallbacks"] = int(_counters.total("guard.fallback"))
    reset_guard()

    return {
        "name": case.name,
        "op": case.op,
        "shape": {"x": list(case.x_shape), "w": list(case.w_shape),
                  "padding": case.padding, "stride": case.stride,
                  "dilation": case.dilation, "groups": case.groups,
                  "output_padding": case.output_padding},
        "layout": layout,
        "first_call_ms": round(first_call_ms, 4),
        "cached_ms": round(cached_ms, 4),
        "roofline_pct": round(pct, 2) if pct is not None else None,
        "predicted_counters": predicted,
        "counters": case_counters,
    }


@dataclass(frozen=True)
class ServePreset:
    """One serving-throughput scenario (``repro serve-bench``).

    Measures requests/sec of a burst of *requests* independent
    ``submit``s through a :class:`~repro.serve.ConvServer` against the
    same burst as a sequential ``conv2d`` loop — the workload dynamic
    batching exists for.  ``min_speedup`` is the sustained floor the
    regression gate enforces (None records without gating).
    """

    name: str
    size: int
    kernel: int
    channels: int
    filters: int
    padding: int
    requests: int = 48
    request_batch: int = 1
    groups: int = 1
    max_batch: int = 8
    max_wait_ms: float = 5.0
    workers: int = 1
    mode: str = "thread"
    min_speedup: float | None = None
    heavy: bool = False  # skipped in --smoke runs


SERVE_PRESETS: tuple[ServePreset, ...] = (
    # Small per-request work is exactly where coalescing pays: the
    # per-call fixed cost (validation, dispatch, plan/spectrum lookups,
    # FFT call overhead) dominates single-image latency, and one stacked
    # batch-8 call amortizes it 8 ways.  The >= 2x floor is sustained
    # throughput, gated by `repro bench --check`.
    ServePreset("serve_batch8", size=8, kernel=3, channels=3, filters=8,
                padding=1, requests=48, max_batch=8, min_speedup=2.0),
    # Compute-bound shape: per-row FFT/einsum work dwarfs the fixed cost,
    # so coalescing buys little — recorded ungated as the honest contrast.
    ServePreset("serve_batch8_c16", size=16, kernel=3, channels=16,
                filters=16, padding=1, requests=24, heavy=True),
    # Oversized requests (batch 16 > max_batch 8) bypass the queue and
    # shard across the worker pool along batch and group axes.
    ServePreset("serve_shard_oversized", size=16, kernel=3, channels=8,
                filters=8, padding=1, requests=6, request_batch=16,
                groups=2, workers=2, heavy=True),
)


def run_serve_case(preset: ServePreset, repeats: int = 5) -> dict:
    """Sequential-loop vs served-burst throughput for one preset.

    Every served result is compared bit-exactly (``np.array_equal``)
    against the sequential reference — a throughput win that changed the
    numbers would be a correctness bug, so parity failure raises.
    """
    from repro.nn import functional as F
    from repro.observe.registry import counters as _counters
    from repro.serve import ConvServer

    rng = np.random.default_rng(0)
    c, f, k = preset.channels, preset.filters, preset.kernel
    weight = rng.standard_normal((f, c // preset.groups, k, k))
    bias = rng.standard_normal(f)
    xs = [rng.standard_normal((preset.request_batch, c, preset.size,
                               preset.size))
          for _ in range(preset.requests)]

    def sequential():
        return [F.conv2d(x, weight, bias, padding=preset.padding,
                         groups=preset.groups) for x in xs]

    refs = sequential()  # warm plan/spectrum caches + reference outputs
    seq_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sequential()
        seq_s = min(seq_s, time.perf_counter() - start)

    with ConvServer(max_batch=preset.max_batch,
                    max_wait_ms=preset.max_wait_ms,
                    workers=preset.workers, mode=preset.mode) as server:
        server.conv2d(xs[0], weight, bias, padding=preset.padding,
                      groups=preset.groups, timeout=30)
        served_s = float("inf")
        for _ in range(repeats):
            _counters.clear("serve.")
            start = time.perf_counter()
            futures = [server.submit(x, weight, bias,
                                     padding=preset.padding,
                                     groups=preset.groups) for x in xs]
            outs = [future.result(30) for future in futures]
            served_s = min(served_s, time.perf_counter() - start)
        snapshot = {
            "requests": int(_counters.total("serve.requests")),
            "batches": int(_counters.total("serve.batches")),
            "coalesced": int(_counters.total("serve.coalesced")),
            "shards": int(_counters.total("serve.shards")),
            "batch_rows": int(_counters.total("serve.batch_size")),
            "queue_wait_ms": round(
                _counters.total("serve.queue_wait_ms"), 3),
        }
        _counters.clear("serve.")

    for out, ref in zip(outs, refs):
        if not np.array_equal(out, ref):
            raise AssertionError(
                f"served result diverged from sequential conv2d on "
                f"{preset.name}")

    return {
        "name": preset.name,
        "shape": {"size": preset.size, "kernel": preset.kernel,
                  "channels": preset.channels, "filters": preset.filters,
                  "padding": preset.padding, "groups": preset.groups},
        "requests": preset.requests,
        "request_batch": preset.request_batch,
        "max_batch": preset.max_batch,
        "max_wait_ms": preset.max_wait_ms,
        "workers": preset.workers,
        "mode": preset.mode,
        "sequential_ms": round(seq_s * 1e3, 4),
        "served_ms": round(served_s * 1e3, 4),
        "sequential_rps": round(preset.requests / seq_s, 1),
        "served_rps": round(preset.requests / served_s, 1),
        "speedup": round(seq_s / served_s, 3),
        "min_speedup": preset.min_speedup,
        "exact": True,
        "counters": snapshot,
    }


def _seed_fft_pow2(x, sign):
    """The seed's radix-2 kernel: per-stage temporaries + copy-back
    (since rewritten with in-place ufuncs)."""
    from repro.fft.plan import get_fft_plan

    n = x.shape[-1]
    plan = get_fft_plan(n)
    out = np.ascontiguousarray(x[..., plan.perm], dtype=complex)
    stages = plan.fwd_stages if sign < 0 else plan.inv_stages
    size = 2
    for tw in stages:
        half = size // 2
        view = out.reshape(*out.shape[:-1], n // size, size)
        even = view[..., :half]
        odd = view[..., half:] * tw
        view[..., :half], view[..., half:] = even + odd, even - odd
        size *= 2
    return out


def _seed_builtin_rfft(x, n):
    """The seed's even-size packed rfft (np.pad + np.roll unpack)."""
    if x.shape[-1] < n:
        pad = [(0, 0)] * (x.ndim - 1) + [(0, n - x.shape[-1])]
        x = np.pad(x, pad)
    z = x[..., 0::2] + 1j * x[..., 1::2]
    z_hat = _seed_fft_pow2(z, -1.0)
    z_rev = np.roll(z_hat[..., ::-1], 1, axis=-1)
    even = 0.5 * (z_hat + np.conj(z_rev))
    odd = -0.5j * (z_hat - np.conj(z_rev))
    tw = np.exp(-2j * np.pi * np.arange(n // 2 + 1) / n)
    even_ext = np.concatenate([even, even[..., :1]], axis=-1)
    odd_ext = np.concatenate([odd, odd[..., :1]], axis=-1)
    return even_ext + tw * odd_ext


def _seed_builtin_irfft(spec, n):
    """The seed's irfft: full Hermitian rebuild + full-length inverse
    (since replaced by the packed half-length inverse)."""
    tail = np.conj(spec[..., -2:0:-1])
    full = np.concatenate([spec, tail], axis=-1)
    return (_seed_fft_pow2(full, +1.0) / n).real


def _seed_conv2d(x, w, padding, strategy, backend):
    """Per-call pipeline of the seed implementation, replicated verbatim.

    The engine's shared code paths have since been optimized (vectorized
    merge construction, allocate-and-assign padding, strided gather,
    in-place radix-2 butterflies, packed half-length inverse real FFT),
    so timing today's code with caches disabled would understate the
    seed.  This replica keeps the seed's behavior: per-call validation
    and shape/plan dispatch (validation ran again inside
    ``transform_weight`` and ``execute``), pow2 FFT sizes, per-call
    weight transform with per-filter Python loops for the merge layout,
    ``np.pad``, advanced-index output gather, and the seed's builtin FFT
    kernels.
    """
    from repro import fft as _fft
    from repro.core.construction import (
        channel_kernel_stack, merged_input_polynomial,
        merged_kernel_polynomial,
    )
    from repro.core.multichannel import get_plan
    from repro.utils.shapes import ConvShape
    from repro.utils.validation import check_conv_inputs, ensure_array

    x = ensure_array(x, "x", dtype=float)
    w = ensure_array(w, "weight", dtype=float)
    check_conv_inputs(x, w, padding, 1)
    shape = ConvShape.from_tensors(x.shape, w.shape, padding, 1)
    fft = _fft.get_backend(backend)
    plan = get_plan(shape, "pow2", strategy, backend)
    w = ensure_array(w, "weight", ndim=4, dtype=float)
    x = ensure_array(x, "x", ndim=4, dtype=float)
    nfft = plan.nfft
    builtin = fft.name == "builtin"
    rfft = _seed_builtin_rfft if builtin else fft.rfft
    pad = shape.padding
    xp = np.pad(x, [(0, 0), (0, 0), (pad, pad), (pad, pad)])
    n, c = shape.n, shape.c
    if strategy == "sum":
        w_hat = rfft(channel_kernel_stack(w, shape.padded_iw), nfft)
        x_hat = rfft(xp.reshape(n, c, -1), nfft)
        out_hat = np.einsum("ncb,fcb->nfb", x_hat, w_hat)
    else:
        w_hat = rfft(np.stack([
            merged_kernel_polynomial(w[f], shape.padded_iw)
            for f in range(shape.f)
        ]), nfft)
        merged = np.stack([merged_input_polynomial(xp[i]) for i in range(n)])
        x_hat = rfft(merged, nfft)
        out_hat = x_hat[:, None, :] * w_hat[None, :, :]
    if builtin:
        product = _seed_builtin_irfft(out_hat, nfft)
    else:
        product = fft.irfft(out_hat, nfft)
    return product[..., plan.gather]


def _time_ms(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-*repeats* wall-clock milliseconds for one call of *fn*."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def _time_interleaved(fns: dict[str, object], repeats: int,
                      rounds: int | None = None,
                      warmup: int = 1) -> dict[str, float]:
    """Best-of ms per function, measured as round-robin *blocks*.

    Each path is timed in consecutive-call blocks (the workload the
    engine targets — repeated same-shape calls — and it keeps the CPU
    caches in their steady state for that path), but blocks for all paths
    alternate across several rounds so background-load drift on a shared
    box cannot bias one path's numbers.  More rounds (of smaller blocks)
    means every path samples more distinct time windows, so bursty
    background load is unlikely to depress one path's floor and not
    another's.
    """
    if rounds is None:
        rounds = max(3, min(12, repeats // 5))
    for fn in fns.values():
        for _ in range(warmup):
            fn()
    best = {name: float("inf") for name in fns}
    per_block = max(1, repeats // rounds)
    for _ in range(rounds):
        for name, fn in fns.items():
            fn()  # re-warm this path's cache lines after the round-robin
            for _ in range(per_block):
                start = time.perf_counter()
                fn()
                best[name] = min(best[name],
                                 time.perf_counter() - start)
    return {name: t * 1e3 for name, t in best.items()}


def run_case(case: BenchCase, repeats: int = 25,
             workers: int | None = 2) -> dict:
    """Measure every engine path for one suite case.

    The default 25 repeats give each path a best-of floor sampled over 5
    round-robin blocks; the old default of 5 (best-of-3 in one time
    window each) was thin enough that background-load bursts on a shared
    box routinely inflated a single path's number by 10-20%.  Smoke runs
    still clamp to 2 (see :func:`run_suite`).
    """
    from repro.core import multichannel as mc
    from repro.nn.layers import Conv2d
    from repro.utils.random import random_problem
    from repro.utils.shapes import ConvShape

    shape = ConvShape(ih=case.size, iw=case.size, kh=case.kernel,
                      kw=case.kernel, n=case.batch, c=case.channels,
                      f=case.filters, padding=case.padding,
                      stride=case.stride, dilation=case.dilation,
                      groups=case.groups)
    x, w = random_problem(shape)

    def call(**kw):
        return mc.conv2d_polyhankel(x, w, padding=case.padding,
                                    stride=case.stride,
                                    dilation=case.dilation,
                                    groups=case.groups,
                                    strategy=case.strategy,
                                    backend=case.backend, **kw)

    # Cold: plan + spectrum built from nothing.
    mc.clear_plan_cache()
    mc.clear_spectrum_cache()
    start = time.perf_counter()
    call()
    first_call_ms = (time.perf_counter() - start) * 1e3

    if case.extended:
        # The seed implementation could not run this case; verify the
        # engine against the naive reference instead of the seed replica.
        from repro.baselines.naive import conv2d_naive

        want = conv2d_naive(x, w, padding=case.padding, stride=case.stride,
                            dilation=case.dilation, groups=case.groups)
        if not np.allclose(want, call(), atol=1e-8):
            raise AssertionError(f"engine diverged from naive on "
                                 f"{case.name}")
    else:
        # The seed replica must agree with the engine, or the baseline is
        # bogus (see _seed_conv2d).
        seed_out = _seed_conv2d(x, w, case.padding, case.strategy,
                                case.backend)
        if not np.allclose(seed_out, call(), atol=1e-8):
            raise AssertionError(f"seed replica diverged on {case.name}")

    plan = mc.get_plan(shape, strategy=case.strategy, backend=case.backend)
    fns = {
        # Per-call weight transform through today's pipeline, bypassing
        # the spectrum cache.
        "uncached": lambda: plan.execute(x, plan.transform_weight(w)),
        "cached": call,
    }
    if not case.extended:
        fns["seed"] = lambda: _seed_conv2d(x, w, case.padding,
                                           case.strategy, case.backend)
    if workers and case.batch > 1:
        fns["workers"] = lambda: call(workers=workers)
    # Conv2d always runs the default (numpy) backend, so the layer column
    # is only meaningful for numpy cases.
    if case.backend == "numpy":
        layer = Conv2d(case.channels, case.filters, case.kernel,
                       padding=case.padding, stride=case.stride,
                       dilation=case.dilation, groups=case.groups,
                       bias=False)
        layer.weight = w
        fns["layer"] = lambda: layer(x)

    times = _time_interleaved(fns, repeats)

    # Deterministic counter totals of one cached steady-state call: FFT
    # invocations and row-transforms, from the unified observe registry.
    from repro.observe import tracing
    from repro.observe.registry import counters as _counters
    from repro.observe.registry import fft_call_totals

    _counters.clear("fft.")
    with tracing():
        call()
    totals = fft_call_totals()
    case_counters = {
        "fft_calls": sum(v["calls"] for v in totals.values()),
        "fft_rows": sum(v["rows"] for v in totals.values()),
        "by_kind": {kind: v["calls"] for kind, v in sorted(totals.items())},
    }

    # One guard-enabled steady-state call: on a healthy install the primary
    # algorithm passes its sentinel and the chain never advances, so the
    # fallback count must be 0.  The regression gate enforces this with
    # zero tolerance (a healthy CI box has no excuse for a fallback).
    from repro.guard.chain import reset_guard
    from repro.guard.state import guarded
    from repro.nn import functional as F

    reset_guard()
    with guarded():
        F.conv2d(x, w, padding=case.padding, stride=case.stride,
                 dilation=case.dilation, groups=case.groups,
                 algorithm="polyhankel", strategy=case.strategy,
                 backend=case.backend)
    case_counters["guard_fallbacks"] = int(_counters.total("guard.fallback"))
    reset_guard()

    seed_ms = times.get("seed")
    uncached_ms = times["uncached"]
    cached_ms = times["cached"]
    workers_ms = times.get("workers")
    layer_cached_ms = times.get("layer")

    # Percent of the CPU roofline lower bound the warm call achieves
    # (schema v4): predicted from the packed/unpacked cost model for the
    # plan's resolved spectrum layout.
    from repro.perfmodel.engine import roofline_pct

    pct = roofline_pct(shape, cached_ms, plan.layout)

    return {
        "name": case.name,
        "shape": {"size": case.size, "kernel": case.kernel,
                  "batch": case.batch, "channels": case.channels,
                  "filters": case.filters, "padding": case.padding,
                  "stride": case.stride, "dilation": case.dilation,
                  "groups": case.groups},
        "strategy": case.strategy,
        "backend": case.backend,
        "layout": plan.layout,
        "first_call_ms": round(first_call_ms, 4),
        "seed_ms": round(seed_ms, 4) if seed_ms is not None else None,
        "uncached_ms": round(uncached_ms, 4),
        "cached_ms": round(cached_ms, 4),
        "layer_cached_ms": round(layer_cached_ms, 4)
        if layer_cached_ms is not None else None,
        "workers_ms": round(workers_ms, 4) if workers_ms is not None
        else None,
        "speedup": round(seed_ms / cached_ms, 3)
        if cached_ms and seed_ms is not None else None,
        "cache_speedup": round(uncached_ms / cached_ms, 3)
        if cached_ms else None,
        "roofline_pct": round(pct, 2) if pct is not None else None,
        "counters": case_counters,
    }


#: Environment pins recorded with every report: on CI these are set
#: explicitly (see .github/workflows/ci.yml) so successive runs measure
#: the engine, not whatever thread count the runner woke up with.
ENV_PINS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
            "REPRO_SERVE_WORKERS")


def env_pins() -> dict[str, str | None]:
    """Current values of the determinism-relevant environment pins."""
    return {name: os.environ.get(name) for name in ENV_PINS}


def run_suite(smoke: bool = False, repeats: int = 25,
              workers: int | None = 2, serve: bool = True,
              cluster: bool = True, overload: bool = True) -> dict:
    """Run the whole suite; ``smoke=True`` trims repeats and heavy cases."""
    from repro.core.multichannel import plan_cache_info, spectrum_cache_info
    from repro.fft.plan import fft_plan_cache_info
    from repro.serve.loadgen import (
        CLUSTER_PRESETS,
        OVERLOAD_PRESETS,
        run_cluster_case,
        run_overload_case,
    )

    if smoke:
        repeats = min(repeats, 2)
    cases = [c for c in SUITE if not (smoke and c.heavy)]
    results = [run_case(c, repeats=repeats, workers=workers) for c in cases]
    results += [run_nd_case(c, repeats=repeats)
                for c in ND_SUITE if not (smoke and c.heavy)]
    serve_results = []
    if serve:
        # Serve presets cost milliseconds per repeat, so even smoke runs
        # afford a deeper best-of floor — and the throughput gate is a
        # floor contract, which thin sampling would trip on noise alone.
        presets = [p for p in SERVE_PRESETS if not (smoke and p.heavy)]
        serve_results = [run_serve_case(p, repeats=max(repeats, 5))
                         for p in presets]
    cluster_results = []
    if cluster:
        # Smoke trims the sweep to the two points the scale-out floor is
        # defined over — each point spawns real worker processes, so the
        # 4-worker point is reserved for full runs (and nightly).
        for preset in CLUSTER_PRESETS:
            if smoke and preset.heavy:
                continue
            counts = tuple(w for w in preset.worker_counts if w <= 2) \
                if smoke else None
            cluster_results += run_cluster_case(
                preset, repeats=min(repeats, 3), worker_counts=counts)
    overload_results = []
    if overload:
        # Smoke keeps the gate point (2x) plus the 1x reference; the
        # underload and deep-overload points are full-run color.
        for preset in OVERLOAD_PRESETS:
            if smoke and preset.heavy:
                continue
            multipliers = tuple(
                m for m in preset.multipliers
                if m in (1.0, preset.gate_multiplier)) if smoke else None
            overload_results += run_overload_case(preset,
                                                  multipliers=multipliers)
    selection_results = run_selection_suite(requests=100 if smoke else 300)
    return {
        "schema": SCHEMA_VERSION,
        "date": datetime.date.today().isoformat(),
        "smoke": smoke,
        "repeats": repeats,
        "workers": workers,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "env_pins": env_pins(),
        },
        "results": results,
        "serve": serve_results,
        "cluster": cluster_results,
        "overload": overload_results,
        "selection": selection_results,
        "caches": {
            "plan": plan_cache_info()._asdict(),
            "spectrum": spectrum_cache_info()._asdict(),
            "fft_plan": fft_plan_cache_info()._asdict(),
        },
    }


#: Ceiling on cumulative served regret vs. the roofline oracle over a
#: selection replay — the CI contract each ``selection`` entry carries.
MAX_REGRET_PCT = 5.0


def run_selection_suite(seed: int = 0, requests: int = 300) -> list[dict]:
    """Seeded bandit-convergence replay for the regression gate.

    Drives the online algorithm-selection bandit with synthetic
    observations drawn from the roofline model under seeded noise, one
    entry per drill key (see :mod:`repro.selection.drill`).  The replay
    is deterministic and machine-independent, so entries are never
    re-measured; each carries its own ``max_regret_pct`` ceiling and the
    gate also requires convergence onto the oracle's modeled-cost tie
    set.
    """
    from repro.selection.bandit import BanditConfig, SelectionBandit
    from repro.selection.drill import (
        DRILL_SHAPES,
        _digest,
        _model_ms,
        replay_key,
    )

    config = BanditConfig(apply=True, explore_fraction=0.25, min_obs=5)
    bandit = SelectionBandit(config)
    rng = np.random.default_rng(seed)
    entries = []
    for name, shape in DRILL_SHAPES:
        digest = _digest(shape)
        entry = replay_key(bandit, digest, shape,
                           _model_ms(shape, config.device), rng, requests)
        entry.update({
            "name": f"selection/{name}",
            "seed": seed,
            "requests": requests,
            "max_regret_pct": MAX_REGRET_PCT,
        })
        entries.append(entry)
    return entries


def format_selection_report(entries: list[dict]) -> str:
    """Human-readable table for selection-convergence entries."""
    lines = [f"{'key':<28} {'oracle':<16} {'chosen':<16} "
             f"{'regret%':>8} {'ceil%':>6} {'explored':>8}  converged"]
    for r in entries:
        lines.append(
            f"{r['name']:<28} {r['oracle']:<16} {str(r['chosen']):<16} "
            f"{r['regret_pct']:>8.2f} {r['max_regret_pct']:>6.1f} "
            f"{r['explored']:>8}  "
            f"{'yes' if r['converged'] else 'NO'}")
    return "\n".join(lines)


def run_inject_drill(kinds: tuple[str, ...] | None = None,
                     smoke: bool = False, seed: int = 0) -> dict:
    """Guard recovery drill: every case forward, under every fault kind.

    Each suite case runs one guard-enabled forward inside a
    :func:`repro.guard.faults.inject` scope and must still reproduce the
    naive reference within tolerance.  Returns a report with one row per
    (case, fault) pair; ``report["failures"]`` counts rows that either
    exhausted the chain or produced a wrong answer.
    """
    from repro.baselines.naive import conv2d_naive
    from repro.guard import faults
    from repro.guard.chain import reset_guard
    from repro.guard.state import guarded
    from repro.nn import functional as F
    from repro.observe.registry import counters as _counters
    from repro.utils.random import random_problem
    from repro.utils.shapes import ConvShape

    if not kinds:
        # Engine kinds only: the cluster kinds have no hook sites inside
        # a single-process forward (drill them with --inject-cluster).
        kinds = faults.ENGINE_FAULT_KINDS
    cases = [c for c in SUITE if not (smoke and c.heavy)]
    rows = []
    for case in cases:
        shape = ConvShape(ih=case.size, iw=case.size, kh=case.kernel,
                          kw=case.kernel, n=case.batch, c=case.channels,
                          f=case.filters, padding=case.padding,
                          stride=case.stride, dilation=case.dilation,
                          groups=case.groups)
        x, w = random_problem(shape)
        ref = conv2d_naive(x, w, padding=case.padding, stride=case.stride,
                           dilation=case.dilation, groups=case.groups)
        tol = 1e-8 * max(float(np.max(np.abs(ref))), 1.0)
        for kind in kinds:
            reset_guard()
            error = None
            err = float("inf")
            # Injected NaN/Inf legitimately flow through the arithmetic
            # before the sentinel catches them; silence the noise.
            with guarded(), faults.inject(kind, seed=seed) as state, \
                    np.errstate(invalid="ignore", over="ignore"):
                try:
                    out = F.conv2d(x, w, padding=case.padding,
                                   stride=case.stride,
                                   dilation=case.dilation,
                                   groups=case.groups,
                                   algorithm="polyhankel",
                                   strategy=case.strategy,
                                   backend=case.backend)
                    err = float(np.max(np.abs(out - ref)))
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
            rows.append({
                "case": case.name,
                "fault": kind,
                "recovered": error is None and err <= tol,
                "max_err": None if error is not None else err,
                "error": error,
                "injected": int(state.counts.get(kind, 0)),
                "fallbacks": int(_counters.total("guard.fallback")),
                "sentinel_trips": int(_counters.total("guard.sentinel_trip")),
                "cache_corrupt": int(_counters.total("guard.cache_corrupt")),
            })
    reset_guard()
    return {
        "schema": SCHEMA_VERSION,
        "kinds": list(kinds),
        "seed": seed,
        "rows": rows,
        "failures": sum(1 for r in rows if not r["recovered"]),
    }


def format_inject_report(report: dict) -> str:
    """Human-readable table for one :func:`run_inject_drill` report."""
    lines = [f"fault-injection drill (kinds={','.join(report['kinds'])}, "
             f"seed={report['seed']})"]
    lines.append(f"{'case':<24} {'fault':<20} {'verdict':<10} "
                 f"{'max err':>10} {'inj':>4} {'fb':>4} {'trip':>5} "
                 f"{'corrupt':>8}")
    for r in report["rows"]:
        verdict = "recovered" if r["recovered"] else "FAILED"
        err = f"{r['max_err']:10.2e}" if r["max_err"] is not None \
            else f"{'-':>10}"
        lines.append(
            f"{r['case']:<24} {r['fault']:<20} {verdict:<10} {err} "
            f"{r['injected']:>4} {r['fallbacks']:>4} "
            f"{r['sentinel_trips']:>5} {r['cache_corrupt']:>8}")
        if r["error"] is not None:
            lines.append(f"    {r['error']}")
    failures = report["failures"]
    lines.append("drill passed: every forward recovered" if not failures
                 else f"drill FAILED: {failures} unrecovered forward(s)")
    return "\n".join(lines)


def run_cluster_inject_drill(kinds: tuple[str, ...] | None = None,
                             seed: int = 0, requests: int = 12) -> dict:
    """Cluster chaos drill: each fault kind against a live 2-worker tier.

    For every kind in :data:`repro.guard.faults.CLUSTER_FAULT_KINDS` the
    drill spins up a real :class:`~repro.serve.router.ClusterServer`
    (fast watchdog/backoff settings), arms the fault at its genuine hook
    site — inside the worker process for ``worker_stall`` /
    ``slow_worker`` / ``response_drop``, in the router's slot release
    for ``slot_leak`` — offers *requests* convolutions, and asserts the
    recovery contract: every future resolves exactly once (zero lost,
    zero duplicated), every delivered result is bit-exact with the
    in-process engine, and the round completes within a bounded wall
    time.  Row counters record the observable evidence (stalls drawn,
    respawns, worker sheds, leaked slots).
    """
    from repro.guard import faults
    from repro.nn import functional as F
    from repro.observe.registry import counters as _counters
    from repro.serve.overload import ServeConfig
    from repro.serve.router import ClusterServer

    if not kinds:
        kinds = faults.CLUSTER_FAULT_KINDS
    unknown = set(kinds) - set(faults.CLUSTER_FAULT_KINDS)
    if unknown:
        raise ValueError(
            f"unknown cluster fault kind(s) {sorted(unknown)}; "
            f"known: {list(faults.CLUSTER_FAULT_KINDS)}")
    rng = np.random.default_rng(seed)
    weight = rng.standard_normal((8, 3, 3, 3))
    bias = rng.standard_normal(8)
    xs = [rng.standard_normal((1, 3, 8, 8)) for _ in range(requests)]
    refs = [F.conv2d(x, weight, bias, padding=1) for x in xs]
    config = ServeConfig(watchdog_interval_s=0.2, stall_timeout_s=0.5,
                         backoff_base_s=0.01)
    evidence_counters = ("serve.cluster.stalls", "serve.cluster.respawns",
                        "serve.cluster.worker_sheds",
                        "serve.cluster.slot_leaks")
    rows = []
    for kind in kinds:
        before = {name: _counters.total(name)
                  for name in evidence_counters}
        error = None
        exact = 0
        t0 = time.perf_counter()
        with ClusterServer(workers=2, slots=16, slot_bytes=1 << 18,
                           config=config) as server:
            # Warm both replicas' caches before arming anything.
            for _ in range(4):
                server.conv2d(xs[0], weight, bias, padding=1, timeout=60)
            try:
                if kind == "slot_leak":
                    # Router-side hook: scope the injection around the
                    # offered load like any engine drill.
                    with faults.inject(kind, seed=seed, max_fires=1):
                        futures = [server.submit(x, weight, bias,
                                                 padding=1) for x in xs]
                        outs = [f.result(120) for f in futures]
                else:
                    # Worker-side hooks, armed over the control pipe.
                    # Stall/drop only on replica 0 (replica 1 must
                    # survive to absorb the reroute: simultaneous loss
                    # of every replica is a cluster outage, not a
                    # recoverable fault); the benign slowdown goes
                    # everywhere.
                    params = {"worker_stall": {"stall_s": 30.0},
                              "slow_worker": {"delay_s": 0.02},
                              "response_drop": {}}[kind]
                    targets = None if kind == "slow_worker" else [0]
                    max_fires = None if kind == "slow_worker" else 1
                    acked = server.inject_worker_faults(
                        kind, replica_ids=targets, seed=seed,
                        max_fires=max_fires, params=params)
                    if not acked:
                        raise RuntimeError(
                            f"no replica acknowledged arming {kind}")
                    futures = [server.submit(x, weight, bias, padding=1)
                               for x in xs]
                    outs = [f.result(120) for f in futures]
                exact = sum(np.array_equal(out, ref)
                            for out, ref in zip(outs, refs))
                if exact != requests:
                    error = (f"{requests - exact} result(s) diverged "
                             f"from the in-process engine")
            except Exception as exc:  # noqa: BLE001 - drill verdict
                error = f"{type(exc).__name__}: {exc}"
        recovery_s = time.perf_counter() - t0
        evidence = {name.rsplit(".", 1)[-1]:
                    int(_counters.total(name) - before[name])
                    for name in evidence_counters}
        rows.append({
            "fault": kind,
            "requests": requests,
            "recovered": error is None,
            "exact": exact,
            "recovery_s": round(recovery_s, 3),
            "error": error,
            **evidence,
        })
    return {
        "schema": SCHEMA_VERSION,
        "kinds": list(kinds),
        "seed": seed,
        "rows": rows,
        "failures": sum(1 for r in rows if not r["recovered"]),
    }


def format_cluster_inject_report(report: dict) -> str:
    """Human-readable table for one cluster chaos drill report."""
    lines = [f"cluster chaos drill (kinds={','.join(report['kinds'])}, "
             f"seed={report['seed']})"]
    lines.append(f"{'fault':<16} {'verdict':<10} {'exact':>6} "
                 f"{'time s':>7} {'stalls':>7} {'respawns':>9} "
                 f"{'sheds':>6} {'leaks':>6}")
    for r in report["rows"]:
        verdict = "recovered" if r["recovered"] else "FAILED"
        lines.append(
            f"{r['fault']:<16} {verdict:<10} "
            f"{r['exact']:>3}/{r['requests']:<2} {r['recovery_s']:>7.2f} "
            f"{r['stalls']:>7} {r['respawns']:>9} {r['worker_sheds']:>6} "
            f"{r['slot_leaks']:>6}")
        if r["error"] is not None:
            lines.append(f"    {r['error']}")
    failures = report["failures"]
    lines.append("drill passed: every fault recovered" if not failures
                 else f"drill FAILED: {failures} unrecovered fault(s)")
    return "\n".join(lines)


def format_report(report: dict) -> str:
    """Human-readable table for one :func:`run_suite` report."""
    lines = [f"bench {report['date']}  (repeats={report['repeats']}, "
             f"smoke={report['smoke']})"]
    header = (f"{'case':<24} {'layout':<12} {'first':>9} {'seed':>9} "
              f"{'uncached':>9} {'cached':>9} {'layer':>9} {'workers':>9} "
              f"{'speedup':>8} {'roofline':>8}")
    lines.append(header)
    for r in report["results"]:
        def col(value, suffix="", width=9):
            return f"{value:{width - len(suffix)}.3f}{suffix}" \
                if value is not None else f"{'-':>{width}}"

        sp = f"{r['speedup']:8.2f}x" if r.get("speedup") is not None \
            else f"{'-':>9}"
        rf = f"{r['roofline_pct']:7.1f}%" \
            if r.get("roofline_pct") is not None else f"{'-':>8}"
        lines.append(
            f"{r['name']:<24} {r.get('layout') or '-':<12} "
            f"{r['first_call_ms']:9.3f} {col(r.get('seed_ms'))} "
            f"{col(r.get('uncached_ms'))} {r['cached_ms']:9.3f} "
            f"{col(r.get('layer_cached_ms'))} {col(r.get('workers_ms'))} "
            f"{sp} {rf}")
    if report.get("serve"):
        lines.append("")
        lines.append(format_serve_report(report["serve"]))
    if report.get("cluster"):
        from repro.serve.loadgen import format_cluster_report

        lines.append("")
        lines.append(format_cluster_report(report["cluster"]))
    if report.get("overload"):
        from repro.serve.loadgen import format_overload_report

        lines.append("")
        lines.append(format_overload_report(report["overload"]))
    if report.get("selection"):
        lines.append("")
        lines.append(format_selection_report(report["selection"]))
    return "\n".join(lines)


def format_serve_report(entries: list[dict]) -> str:
    """Human-readable table for serve-throughput entries."""
    lines = [f"{'preset':<24} {'seq rps':>9} {'served':>9} {'speedup':>8} "
             f"{'floor':>6} {'batches':>8} {'shards':>7} {'wait ms':>8}"]
    for r in entries:
        floor = f"{r['min_speedup']:5.1f}x" if r.get("min_speedup") \
            else f"{'-':>6}"
        counters = r.get("counters") or {}
        lines.append(
            f"{r['name']:<24} {r['sequential_rps']:>9.0f} "
            f"{r['served_rps']:>9.0f} {r['speedup']:>7.2f}x {floor} "
            f"{counters.get('batches', 0):>8} "
            f"{counters.get('shards', 0):>7} "
            f"{counters.get('queue_wait_ms', 0.0):>8.2f}")
    return "\n".join(lines)


def write_report(report: dict, path: str | None = None) -> str:
    """Serialize *report* to *path* (default ``BENCH_<date>.json``)."""
    if path is None:
        path = f"BENCH_{report['date']}.json"
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path


def _remeasure_flagged(report: dict, flagged: set[str], repeats: int,
                       workers: int | None) -> None:
    """Confirmation pass: re-run flagged cases with more repeats, keep the
    per-metric minimum.  A transient background-load spike during the first
    pass then cannot fail the gate; a real regression reproduces."""
    by_name = {c.name: c for c in SUITE}
    nd_by_name = {c.name: c for c in ND_SUITE}
    for entry in report["results"]:
        name = entry["name"]
        if name not in flagged:
            continue
        if name in by_name:
            retry = run_case(by_name[name], repeats=repeats,
                             workers=workers)
        elif name in nd_by_name:
            retry = run_nd_case(nd_by_name[name], repeats=repeats)
        else:
            continue
        for metric in ("cached_ms", "uncached_ms", "seed_ms",
                       "layer_cached_ms", "workers_ms"):
            old, new = entry.get(metric), retry.get(metric)
            if old is not None and new is not None:
                entry[metric] = min(old, new)


def _remeasure_serve_flagged(report: dict, flagged: set[str],
                             repeats: int) -> None:
    """Confirmation pass for throughput-flagged serve presets: re-run with
    more repeats and keep the better measurement per metric."""
    by_name = {p.name: p for p in SERVE_PRESETS}
    for entry in report.get("serve", []):
        preset = by_name.get(entry["name"])
        if preset is None or entry["name"] not in flagged:
            continue
        retry = run_serve_case(preset, repeats=repeats)
        for metric in ("speedup", "served_rps", "sequential_rps"):
            entry[metric] = max(entry[metric], retry[metric])
        for metric in ("served_ms", "sequential_ms"):
            entry[metric] = min(entry[metric], retry[metric])


def _remeasure_cluster_flagged(report: dict, flagged: set[str],
                               repeats: int) -> None:
    """Confirmation pass for flagged cluster points.

    A preset's points are interdependent (the scale-out ratio divides by
    this run's 1-worker point), so the whole sweep of any flagged preset
    re-runs and each point keeps its better measurement.
    """
    from repro.serve.loadgen import CLUSTER_PRESETS, run_cluster_case

    presets = {e["preset"] for e in report.get("cluster", [])
               if e["name"] in flagged}
    by_name = {p.name: p for p in CLUSTER_PRESETS}
    for preset_name in sorted(presets):
        preset = by_name.get(preset_name)
        if preset is None:
            continue
        counts = tuple(sorted({e["workers"]
                               for e in report["cluster"]
                               if e["preset"] == preset_name}))
        retry = {e["name"]: e for e in run_cluster_case(
            preset, repeats=repeats, worker_counts=counts)}
        for entry in report["cluster"]:
            new = retry.get(entry["name"])
            if new is None:
                continue
            if new["served_rps"] > entry["served_rps"]:
                entry.update({k: new[k] for k in
                              ("served_rps", "p50_ms", "p99_ms",
                               "offered_rps", "scaleout_vs_1")})
            elif new.get("scaleout_vs_1") is not None and (
                    entry.get("scaleout_vs_1") is None
                    or new["scaleout_vs_1"] > entry["scaleout_vs_1"]):
                entry["scaleout_vs_1"] = new["scaleout_vs_1"]


def _remeasure_overload_flagged(report: dict, flagged: set[str]) -> None:
    """Confirmation pass for flagged overload points.

    Goodput percentages divide by the preset's calibrated capacity, so
    any flagged preset's whole sweep re-runs (fresh calibration) and
    each point keeps its better goodput measurement.
    """
    from repro.serve.loadgen import OVERLOAD_PRESETS, run_overload_case

    presets = {e["preset"] for e in report.get("overload", [])
               if e["name"] in flagged}
    by_name = {p.name: p for p in OVERLOAD_PRESETS}
    for preset_name in sorted(presets):
        preset = by_name.get(preset_name)
        if preset is None:
            continue
        multipliers = tuple(e["multiplier"] for e in report["overload"]
                            if e["preset"] == preset_name)
        retry = {e["name"]: e for e in run_overload_case(
            preset, multipliers=multipliers)}
        for entry in report["overload"]:
            new = retry.get(entry["name"])
            if new is None:
                continue
            if (new.get("goodput_pct") or 0.0) \
                    > (entry.get("goodput_pct") or 0.0):
                entry.update({k: new[k] for k in
                              ("goodput_rps", "goodput_pct",
                               "capacity_rps", "offered_rps",
                               "completed", "shed", "rejected",
                               "shed_rate", "p50_ms", "p99_ms")})


def run_check(report: dict, baseline_path: str, tolerance: float,
              counter_tolerance: float, repeats: int,
              workers: int | None) -> int:
    """Gate *report* against the baseline at *baseline_path* (0 == pass)."""
    from repro.observe.regression import (
        compare_reports, format_check, load_baseline,
    )

    baseline = load_baseline(baseline_path)
    regressions = compare_reports(report, baseline, tolerance=tolerance,
                                  counter_tolerance=counter_tolerance)
    wall_flagged = {r.case for r in regressions if r.kind == "wall"}
    serve_names = {e["name"] for e in report.get("serve", [])}
    cluster_names = {e["name"] for e in report.get("cluster", [])}
    overload_names = {e["name"] for e in report.get("overload", [])}
    serve_flagged = {r.case for r in regressions
                     if r.kind == "throughput" and r.case in serve_names}
    cluster_flagged = {r.case for r in regressions
                       if r.kind == "throughput"
                       and r.case in cluster_names}
    overload_flagged = {r.case for r in regressions
                        if r.kind == "throughput"
                        and r.case in overload_names}
    if wall_flagged or serve_flagged or cluster_flagged \
            or overload_flagged:
        flagged_all = (wall_flagged | serve_flagged | cluster_flagged
                       | overload_flagged)
        print(f"[re-measuring {len(flagged_all)} "
              f"flagged case(s) with {2 * repeats} repeats]")
        if wall_flagged:
            _remeasure_flagged(report, wall_flagged, repeats=2 * repeats,
                               workers=workers)
        if serve_flagged:
            _remeasure_serve_flagged(report, serve_flagged,
                                     repeats=2 * repeats)
        if cluster_flagged:
            _remeasure_cluster_flagged(report, cluster_flagged,
                                       repeats=2 * repeats)
        if overload_flagged:
            _remeasure_overload_flagged(report, overload_flagged)
        regressions = compare_reports(report, baseline, tolerance=tolerance,
                                      counter_tolerance=counter_tolerance)
    print(format_check(regressions, baseline_path, tolerance,
                       counter_tolerance))
    return 1 if regressions else 0


def main(argv: list[str] | None = None) -> int:
    from repro.observe.regression import (
        DEFAULT_COUNTER_TOLERANCE, DEFAULT_TOLERANCE,
    )

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="PolyHankel execution-engine wall-clock benchmarks")
    parser.add_argument("--smoke", action="store_true",
                        help="fast subset (CI-friendly)")
    parser.add_argument("--quick", action="store_true",
                        help="alias for --smoke (the CI gate's spelling)")
    parser.add_argument("--repeats", type=int, default=25)
    parser.add_argument("--workers", type=int, default=2,
                        help="thread count for the workers column")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_<date>.json)")
    parser.add_argument("--no-json", action="store_true",
                        help="print the table only")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON and exit "
                             "nonzero on regression")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed wall-clock growth as a fraction "
                             f"(default {DEFAULT_TOLERANCE:g})")
    parser.add_argument("--counter-tolerance", type=float,
                        default=DEFAULT_COUNTER_TOLERANCE,
                        help="allowed counter-total growth as a fraction "
                             f"(default {DEFAULT_COUNTER_TOLERANCE:g})")
    parser.add_argument("--inject", nargs="*", metavar="FAULT",
                        default=None,
                        help="run the guard recovery drill instead of the "
                             "timing suite; optional fault kinds to inject "
                             "(default: all engine kinds)")
    parser.add_argument("--inject-cluster", nargs="*", metavar="FAULT",
                        default=None,
                        help="run the cluster chaos drill instead of the "
                             "timing suite; optional fault kinds "
                             "(default: all cluster kinds)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed (with --inject / "
                             "--inject-cluster)")
    args = parser.parse_args(argv)
    smoke = args.smoke or args.quick

    if args.inject is not None:
        drill = run_inject_drill(kinds=tuple(args.inject) or None,
                                 smoke=smoke, seed=args.seed)
        print(format_inject_report(drill))
        return 1 if drill["failures"] else 0

    if args.inject_cluster is not None:
        drill = run_cluster_inject_drill(
            kinds=tuple(args.inject_cluster) or None, seed=args.seed)
        print(format_cluster_inject_report(drill))
        return 1 if drill["failures"] else 0

    report = run_suite(smoke=smoke, repeats=args.repeats,
                       workers=args.workers)
    print(format_report(report))
    if not args.no_json:
        path = write_report(report, args.out)
        print(f"[written to {path}]")
    if args.check:
        return run_check(report, args.check, tolerance=args.tolerance,
                         counter_tolerance=args.counter_tolerance,
                         repeats=max(args.repeats, 2),
                         workers=args.workers)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
