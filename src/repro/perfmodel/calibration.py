"""Efficiency calibration for the roofline timing model.

Real kernels never hit datasheet peaks.  Each stage *kind* gets a fraction
of peak compute and of peak bandwidth, reflecting well-known per-class
behaviour:

- dense **GEMM** is the best-tuned code on the planet (~70-85% of peak);
- **FFT** kernels are memory-access-limited butterflies; 2D column passes
  stride through memory, 1D batched passes are contiguous — hence the
  separate ``fft`` (2D, strided) vs ``fft1d`` (PolyHankel's contiguous
  batched blocks) entries, which is the practical-efficiency argument of
  Sec. 1;
- **elementwise** and **gather** stages are pure bandwidth;
- **transform** stages (im2col, Winograd tile transforms) are
  gather/scatter-heavy.

Per-device multipliers capture that cuDNN's GEMM kernels are exceptionally
well tuned for Volta (V100) while its FFT path predates Ampere tuning, etc.
The constants were set once so that simulated times land in the paper's
millisecond ballpark; all figure-level claims asserted by the benchmarks
are *orderings and crossovers*, which are robust to these constants (see
``benchmarks/`` and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import ConvAlgorithm
from repro.perfmodel.device import GpuDevice


@dataclass(frozen=True)
class StageEfficiency:
    """Fractions of datasheet peak a stage kind achieves."""

    compute: float
    memory: float


#: Efficiency by (algorithm family adjusted) stage kind.
#: 'cgemm' is the frequency-domain pointwise product with channel
#: contraction — implemented as a batched complex GEMM over frequency bins
#: in cuDNN's FFT path and in ours, hence GEMM-like (if lower) efficiency.
#: 'winograd' is the fused tile-transform+product kernel: its transforms
#: run in registers/shared memory and eat into the arithmetic pipelines.
STAGE_EFFICIENCY: dict[str, StageEfficiency] = {
    "gemm": StageEfficiency(compute=0.72, memory=0.80),
    "cgemm": StageEfficiency(compute=0.65, memory=0.80),
    "winograd": StageEfficiency(compute=0.45, memory=0.55),
    "fft": StageEfficiency(compute=0.30, memory=0.65),
    "fft1d": StageEfficiency(compute=0.50, memory=0.82),
    "elementwise": StageEfficiency(compute=0.25, memory=0.85),
    "transform": StageEfficiency(compute=0.30, memory=0.75),
    "gather": StageEfficiency(compute=0.20, memory=0.75),
}

#: PolyHankel's stages run contiguous batched 1D FFTs; remap its generic
#: 'fft' stage kind to the contiguous-access entry.
CONTIGUOUS_FFT_ALGORITHMS = {
    ConvAlgorithm.POLYHANKEL,
    ConvAlgorithm.POLYHANKEL_OS,
    ConvAlgorithm.FINEGRAIN_FFT,
}

#: Per-algorithm practical-efficiency multipliers, device-independent.
#: These encode well-known implementation maturity differences: cuDNN's
#: GEMM kernels are the best tuned; the fine-grain FFT artifact (research
#: Caffe code, per-row block processing with many small transforms) runs
#: well below library quality — the paper itself notes it only achieves a
#: better tradeoff "if well tuned".
ALGORITHM_SCALE: dict[ConvAlgorithm, float] = {
    ConvAlgorithm.GEMM: 1.00,
    ConvAlgorithm.IMPLICIT_GEMM: 0.92,
    ConvAlgorithm.IMPLICIT_PRECOMP_GEMM: 1.05,
    ConvAlgorithm.FFT: 0.90,
    ConvAlgorithm.FFT_TILING: 0.95,
    ConvAlgorithm.WINOGRAD: 1.00,
    ConvAlgorithm.WINOGRAD_NONFUSED: 0.90,
    ConvAlgorithm.FINEGRAIN_FFT: 0.70,
    ConvAlgorithm.POLYHANKEL: 1.00,
    ConvAlgorithm.POLYHANKEL_OS: 1.00,
}

#: Per-(device, algorithm) throughput multipliers: how well the vendor
#: library's kernels for that algorithm are tuned on that architecture.
#: 1.0 = nominal.  Values > 1 mean "better than the class average".
DEVICE_ALGORITHM_SCALE: dict[tuple[str, ConvAlgorithm], float] = {
    # Volta: cuDNN's (implicit) GEMM kernels are superbly tuned, its FP32
    # FFT path is older; Ampere consumer parts are the opposite.
    ("V100", ConvAlgorithm.GEMM): 1.10,
    ("V100", ConvAlgorithm.IMPLICIT_PRECOMP_GEMM): 1.10,
    ("V100", ConvAlgorithm.FFT): 0.85,
    ("V100", ConvAlgorithm.FFT_TILING): 0.85,
    ("A10G", ConvAlgorithm.FFT): 0.95,
}


def stage_efficiency(kind: str, algorithm: ConvAlgorithm) -> StageEfficiency:
    """Efficiency for a stage of *kind* within *algorithm*."""
    if kind == "fft" and algorithm in CONTIGUOUS_FFT_ALGORITHMS:
        kind = "fft1d"
    try:
        return STAGE_EFFICIENCY[kind]
    except KeyError:
        raise ValueError(f"unknown stage kind {kind!r}") from None


def device_scale(device: GpuDevice, algorithm: ConvAlgorithm) -> float:
    """Combined tuning multiplier for *algorithm* on *device*."""
    return (ALGORITHM_SCALE.get(algorithm, 1.0)
            * DEVICE_ALGORITHM_SCALE.get((device.name, algorithm), 1.0))
