"""GPU performance-model substrate.

Replaces the paper's measured GPU wall-clock and NVIDIA performance
counters (see the substitution table in DESIGN.md):

- :mod:`repro.perfmodel.device` — the paper's three GPUs;
- :mod:`repro.perfmodel.counters` — per-algorithm FLOP / memory-transaction
  models (Tables 2-3, Fig. 7);
- :mod:`repro.perfmodel.timing` — roofline timing (Figs. 3-6);
- :mod:`repro.perfmodel.calibration` — per-stage-kind efficiencies.
"""

from repro.perfmodel.counters import (
    CounterReport,
    Stage,
    count,
    modeled_algorithms,
    polyhankel_block_size,
)
from repro.perfmodel.device import (
    A10G,
    DEVICES,
    PAPER_DEVICES,
    RTX_3090TI,
    V100,
    GpuDevice,
    get_device,
)
from repro.perfmodel.timing import (
    StageTime,
    TimingReport,
    compare,
    simulate,
    simulate_ms,
)

__all__ = [
    "GpuDevice", "get_device", "DEVICES", "PAPER_DEVICES",
    "RTX_3090TI", "A10G", "V100",
    "Stage", "CounterReport", "count", "modeled_algorithms",
    "polyhankel_block_size",
    "StageTime", "TimingReport", "simulate", "simulate_ms", "compare",
]
