"""GPU device models for the paper's three evaluation platforms.

The paper measures on GeForce RTX 3090 Ti, A10G and V100 (Sec. 4).  We carry
their public datasheet numbers; the roofline simulator in
:mod:`repro.perfmodel.timing` uses peak FP32 throughput, DRAM bandwidth and
a per-kernel-launch overhead.  Absolute times are therefore *estimates*;
the reproduction claims are about orderings and crossovers (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuDevice:
    """Roofline-relevant parameters of one GPU.

    ``saturation_bytes`` / ``saturation_flops`` model the latency/occupancy
    wall: a kernel moving far less data (or doing far less arithmetic) than
    these amounts cannot hide memory latency or fill all SMs, so its
    effective throughput is scaled by ``work / (work + saturation)``.  They
    are of order bandwidth x latency, i.e. a few megabytes.
    """

    name: str
    peak_fp32_tflops: float
    mem_bandwidth_gbps: float
    launch_overhead_us: float
    saturation_mbytes: float = 8.0
    saturation_mflops: float = 400.0

    @property
    def peak_flops(self) -> float:
        """Peak FP32 throughput in FLOP/s."""
        return self.peak_fp32_tflops * 1e12

    @property
    def bandwidth(self) -> float:
        """DRAM bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9

    @property
    def launch_overhead_s(self) -> float:
        return self.launch_overhead_us * 1e-6

    @property
    def saturation_bytes(self) -> float:
        return self.saturation_mbytes * 1e6

    @property
    def saturation_flops(self) -> float:
        return self.saturation_mflops * 1e6


#: CPU roofline proxy for the host the engine actually runs on:
#: order-of-magnitude figures for one modern core (AVX FP64 FMA
#: throughput, single-stream DRAM bandwidth).  ``repro profile`` uses
#: their *ratio* for drift shares; ``repro bench`` divides the resulting
#: lower-bound time by the measured wall to report ``roofline_pct`` —
#: the fraction of the memory/compute wall the engine reaches.
CPU_PEAK_FLOPS = 5.0e10
CPU_PEAK_BW = 2.0e10


def cpu_roofline_seconds(flops: float, bytes_moved: float) -> float:
    """Lower-bound seconds for one stage on the CPU proxy: the slower of
    the compute wall and the memory wall."""
    return max(flops / CPU_PEAK_FLOPS, bytes_moved / CPU_PEAK_BW)


# Datasheet values: 3090 Ti (GA102, 40 TFLOPS FP32, 1008 GB/s GDDR6X),
# A10G (GA102 derivative, 31.2 TFLOPS, 600 GB/s), V100 (GV100, 15.7 TFLOPS,
# 900 GB/s HBM2).  Launch overheads reflect typical measured values for the
# respective platform generations.
RTX_3090TI = GpuDevice("GeForce 3090Ti", peak_fp32_tflops=40.0,
                       mem_bandwidth_gbps=1008.0, launch_overhead_us=4.0,
                       saturation_mbytes=10.0, saturation_mflops=500.0)
A10G = GpuDevice("A10G", peak_fp32_tflops=31.2,
                 mem_bandwidth_gbps=600.0, launch_overhead_us=5.0,
                 saturation_mbytes=6.0, saturation_mflops=400.0)
V100 = GpuDevice("V100", peak_fp32_tflops=15.7,
                 mem_bandwidth_gbps=900.0, launch_overhead_us=6.0,
                 saturation_mbytes=9.0, saturation_mflops=250.0)

DEVICES: dict[str, GpuDevice] = {
    "3090ti": RTX_3090TI,
    "a10g": A10G,
    "v100": V100,
}

PAPER_DEVICES: tuple[GpuDevice, ...] = (RTX_3090TI, A10G, V100)


def get_device(name: str | GpuDevice) -> GpuDevice:
    """Resolve a device by (case-insensitive) short name."""
    if isinstance(name, GpuDevice):
        return name
    key = name.lower().replace(" ", "").replace("geforce", "")
    if key in DEVICES:
        return DEVICES[key]
    raise ValueError(
        f"unknown device {name!r}; available: {sorted(DEVICES)}"
    )
