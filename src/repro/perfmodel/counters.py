"""Analytic FLOP and memory-traffic counters for every algorithm.

These are the Table 2 / Table 3 complexity expressions of the paper, made
concrete: every algorithm is decomposed into the stages its implementation
actually runs (im2col, GEMM, row/column FFT passes, pointwise products,
inverse transforms, gathers), and each stage carries a FLOP count and the
bytes it streams through DRAM.  ``transactions`` divides bytes by the
32-byte sector size NVIDIA's performance counters use, which is what Fig. 7b
plots.

Conventions:

- arithmetic is FP32 (4 bytes); spectra are complex64 (8 bytes);
- a real FFT of size n costs ``2.5 * n * log2(n)`` FLOPs, a complex one
  ``5 * n * log2(n)`` (the standard split-radix estimates);
- a complex multiply costs 6 FLOPs; a complex multiply-accumulate 8;
- "conceptual" data redundancy counts as traffic even if a real kernel
  might cache some of it — exactly the paper's argument in Sec. 1 ("the
  number of memory transfers required is still determined by the conceptual
  redundancy").

The PolyHankel model follows the paper's actual implementation (Sec. 3.2):
overlap-save streaming with the FFT block size tied to the *combined kernel
polynomial* length — which is why its cost steps up when the kernel vector
crosses a power of two (the paper's explanation of Fig. 4) — with channels
summed in the frequency domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.registry import ConvAlgorithm
from repro.core.planning import plan_fft_size
from repro.utils.shapes import ConvShape, ConvShapeNd

FLOAT_BYTES = 4
COMPLEX_BYTES = 8
TRANSACTION_BYTES = 32

#: Largest 1D FFT a single GPU kernel can run out of shared memory
#: (with register pressure and twiddle storage, ~2048 complex64 points).
#: Longer transforms use a multi-pass (four-step) decomposition that
#: streams the whole array through DRAM once more per extra pass.
MAX_SINGLE_PASS_FFT = 2048

MIN_OS_BLOCK = 512


def fft_passes(nfft: int) -> int:
    """DRAM passes a batched 1D FFT of size *nfft* needs."""
    passes = 1
    span = MAX_SINGLE_PASS_FFT
    while nfft > span:
        passes += 1
        span *= MAX_SINGLE_PASS_FFT
    return passes


@dataclass(frozen=True)
class Stage:
    """One launched kernel: its arithmetic and its DRAM traffic."""

    name: str
    kind: str  # 'gemm' | 'fft' | 'elementwise' | 'transform' | 'gather'
    flops: float
    bytes_read: float
    bytes_written: float

    @property
    def bytes_moved(self) -> float:
        return self.bytes_read + self.bytes_written


@dataclass(frozen=True)
class CounterReport:
    """All stages of one algorithm on one problem shape."""

    algorithm: ConvAlgorithm
    shape: ConvShape
    stages: tuple[Stage, ...]
    workspace_bytes: float = 0.0

    @property
    def flops(self) -> float:
        return sum(s.flops for s in self.stages)

    @property
    def bytes_moved(self) -> float:
        return sum(s.bytes_moved for s in self.stages)

    @property
    def transactions(self) -> float:
        """32-byte DRAM transactions — the Fig. 7b metric."""
        return self.bytes_moved / TRANSACTION_BYTES

    @property
    def launches(self) -> int:
        return len(self.stages)


def _rfft_flops(n: float) -> float:
    return 2.5 * n * math.log2(max(n, 2))


def _cfft_flops(n: float) -> float:
    return 5.0 * n * math.log2(max(n, 2))


# ---------------------------------------------------------------------------
# GEMM family
# ---------------------------------------------------------------------------

def count_gemm(shape: ConvShape) -> CounterReport:
    """Explicit im2col + GEMM (Table 2/3 row 1).

    The workspace holds ``Kh*Kw*Oh*Ow`` elements per (image, channel) — the
    paper's im2col space expression — and is both written and re-read.
    """
    b, c, f = shape.n, shape.c, shape.f
    patch = shape.kernel_elems * shape.output_elems          # Kh*Kw*Oh*Ow
    workspace = b * c * patch * FLOAT_BYTES
    # The unrolling gather reads 4-byte elements at kernel-strided offsets;
    # at the 32-byte sector granularity performance counters see, that
    # inflates read traffic well beyond the element count.
    gather_inflation = 2.0
    im2col = Stage(
        "im2col", "transform", flops=0.0,
        bytes_read=gather_inflation * workspace, bytes_written=workspace,
    )
    gemm = Stage(
        "gemm", "gemm",
        flops=2.0 * b * f * c * patch,
        bytes_read=workspace + f * c * shape.kernel_elems * FLOAT_BYTES,
        bytes_written=b * f * shape.output_elems * FLOAT_BYTES,
    )
    return CounterReport(ConvAlgorithm.GEMM, shape, (im2col, gemm),
                         workspace_bytes=workspace)


def count_implicit_gemm(shape: ConvShape) -> CounterReport:
    """Fused gather + GEMM: same redundant reads, no materialized workspace.

    The in-flight im2col loads are just as strided as the explicit gather,
    so they carry the same 32-byte-sector inflation; what the implicit
    variants save is the workspace write + re-read.
    """
    b, c, f = shape.n, shape.c, shape.f
    patch = shape.kernel_elems * shape.output_elems
    gather_inflation = 2.0
    gemm = Stage(
        "implicit_gemm", "gemm",
        flops=2.0 * b * f * c * patch,
        bytes_read=(gather_inflation * b * c * patch
                    + f * c * shape.kernel_elems) * FLOAT_BYTES,
        bytes_written=b * f * shape.output_elems * FLOAT_BYTES,
    )
    return CounterReport(ConvAlgorithm.IMPLICIT_GEMM, shape, (gemm,))


def count_implicit_precomp_gemm(shape: ConvShape) -> CounterReport:
    """Implicit GEMM plus a small precomputed offset-table workspace."""
    base = count_implicit_gemm(shape)
    table = shape.output_elems * shape.kernel_elems * 8  # two int32 indices
    gemm = base.stages[0]
    stage = Stage(
        "implicit_precomp_gemm", "gemm",
        flops=gemm.flops,
        bytes_read=gemm.bytes_read + table,
        bytes_written=gemm.bytes_written,
    )
    return CounterReport(ConvAlgorithm.IMPLICIT_PRECOMP_GEMM, shape,
                         (stage,), workspace_bytes=table)


# ---------------------------------------------------------------------------
# FFT family
# ---------------------------------------------------------------------------

def _fft2d_extents(shape: ConvShape,
                   policy: str = "pow2") -> tuple[int, int]:
    # cuDNN's FFT algorithm requires power-of-two transform extents (its
    # documented FFT-algo constraint), unlike free-standing cuFFT.
    fh = plan_fft_size(shape.padded_ih + shape.kh - 1, policy)
    fw = plan_fft_size(shape.padded_iw + shape.kw - 1, policy)
    return fh, fw


def count_fft(shape: ConvShape) -> CounterReport:
    """Monolithic 2D FFT (Table 2/3 row 2).

    Each 2D transform is a row pass (real) plus a column pass (complex),
    with the intermediate complex plane streamed between them — the
    "multiple passes" the paper charges this method with.
    """
    b, c, f = shape.n, shape.c, shape.f
    fh, fw = _fft2d_extents(shape)
    bins = fh * (fw // 2 + 1)

    def fft2d_stages(prefix: str, count: int,
                     input_elems: float) -> list[Stage]:
        rows = Stage(
            f"{prefix}_fft_rows", "fft",
            flops=count * fh * _rfft_flops(fw),
            bytes_read=count * input_elems * FLOAT_BYTES,
            bytes_written=count * bins * COMPLEX_BYTES,
        )
        cols = Stage(
            f"{prefix}_fft_cols", "fft",
            flops=count * (fw // 2 + 1) * _cfft_flops(fh),
            bytes_read=count * bins * COMPLEX_BYTES,
            bytes_written=count * bins * COMPLEX_BYTES,
        )
        return [rows, cols]

    stages = fft2d_stages("input", b * c,
                          shape.padded_ih * shape.padded_iw)
    stages += fft2d_stages("kernel", f * c, shape.kernel_elems)
    stages.append(Stage(
        "pointwise", "cgemm",
        flops=8.0 * b * f * c * bins,
        bytes_read=(b * c + f * c) * bins * COMPLEX_BYTES,
        bytes_written=b * f * bins * COMPLEX_BYTES,
    ))
    stages.append(Stage(
        "ifft_cols", "fft",
        flops=b * f * (fw // 2 + 1) * _cfft_flops(fh),
        bytes_read=b * f * bins * COMPLEX_BYTES,
        bytes_written=b * f * bins * COMPLEX_BYTES,
    ))
    stages.append(Stage(
        "ifft_rows", "fft",
        flops=b * f * fh * _rfft_flops(fw),
        bytes_read=b * f * bins * COMPLEX_BYTES,
        bytes_written=b * f * shape.output_elems * FLOAT_BYTES,
    ))
    workspace = (b * c + f * c + b * f) * bins * COMPLEX_BYTES
    return CounterReport(ConvAlgorithm.FFT, shape, tuple(stages),
                         workspace_bytes=workspace)


def count_fft_tiling(shape: ConvShape, tile: int = 32) -> CounterReport:
    """Tiled 2D FFT: per-tile transforms with halo re-reads."""
    b, c, f = shape.n, shape.c, shape.f
    full_oh = shape.padded_ih - shape.kh + 1
    full_ow = shape.padded_iw - shape.kw + 1
    tiles = math.ceil(full_oh / tile) * math.ceil(full_ow / tile)
    fh = plan_fft_size(tile + shape.kh - 1, "pow2")
    fw = plan_fft_size(tile + shape.kw - 1, "pow2")
    bins = fh * (fw // 2 + 1)
    patch = (tile + shape.kh - 1) * (tile + shape.kw - 1)

    per_tile_fft = fh * _rfft_flops(fw) + (fw // 2 + 1) * _cfft_flops(fh)
    stages = (
        Stage("input_tile_ffts", "fft",
              flops=b * c * tiles * per_tile_fft,
              bytes_read=b * c * tiles * patch * FLOAT_BYTES,
              bytes_written=b * c * tiles * bins * COMPLEX_BYTES),
        Stage("kernel_ffts", "fft",
              flops=f * c * per_tile_fft,
              bytes_read=f * c * shape.kernel_elems * FLOAT_BYTES,
              bytes_written=f * c * bins * COMPLEX_BYTES),
        Stage("pointwise", "cgemm",
              flops=8.0 * b * f * c * tiles * bins,
              bytes_read=(b * c * tiles + f * c) * bins * COMPLEX_BYTES,
              bytes_written=b * f * tiles * bins * COMPLEX_BYTES),
        Stage("ifft_tiles", "fft",
              flops=b * f * tiles * per_tile_fft,
              bytes_read=b * f * tiles * bins * COMPLEX_BYTES,
              bytes_written=b * f * shape.output_elems * FLOAT_BYTES),
    )
    workspace = (b * c + b * f) * tiles * bins * COMPLEX_BYTES
    return CounterReport(ConvAlgorithm.FFT_TILING, shape, stages,
                         workspace_bytes=workspace)


def count_finegrain_fft(shape: ConvShape) -> CounterReport:
    """Zhang's per-row block FFTs (Table 2/3 row 3).

    Row transforms of size ~2*Iw padded to a power of two; Oh*Kh block
    products; one inverse FFT per output row.
    """
    b, c, f = shape.n, shape.c, shape.f
    nfft = plan_fft_size(shape.padded_iw + shape.kw - 1, "pow2")
    bins = nfft // 2 + 1
    stages = (
        Stage("input_row_ffts", "fft",
              flops=b * c * shape.padded_ih * _rfft_flops(nfft),
              bytes_read=b * c * shape.padded_ih * shape.padded_iw
              * FLOAT_BYTES,
              bytes_written=b * c * shape.padded_ih * bins * COMPLEX_BYTES),
        Stage("kernel_row_ffts", "fft",
              flops=f * c * shape.kh * _rfft_flops(nfft),
              bytes_read=f * c * shape.kernel_elems * FLOAT_BYTES,
              bytes_written=f * c * shape.kh * bins * COMPLEX_BYTES),
        Stage("block_products", "cgemm",
              flops=8.0 * b * f * c * shape.oh * shape.kh * bins,
              bytes_read=(b * c * shape.oh * shape.kh
                          + f * c * shape.kh) * bins * COMPLEX_BYTES,
              bytes_written=b * f * shape.oh * bins * COMPLEX_BYTES),
        Stage("row_iffts", "fft",
              flops=b * f * shape.oh * _rfft_flops(nfft),
              bytes_read=b * f * shape.oh * bins * COMPLEX_BYTES,
              bytes_written=b * f * shape.output_elems * FLOAT_BYTES),
    )
    workspace = (b * c * shape.padded_ih + b * f * shape.oh) \
        * bins * COMPLEX_BYTES
    return CounterReport(ConvAlgorithm.FINEGRAIN_FFT, shape, stages,
                         workspace_bytes=workspace)


# ---------------------------------------------------------------------------
# Winograd family
# ---------------------------------------------------------------------------

def count_winograd(shape: ConvShape, m: int = 2,
                   nonfused: bool = False) -> CounterReport:
    """Winograd F(m x m, Kh x Kw) tiles.

    Products drop by ~(m*r / (m+r-1))^2 versus direct; the transforms add
    matrix-vector work per tile.  The non-fused variant streams the
    transformed-tile workspaces through DRAM between stages (cuDNN's
    WINOGRAD_NONFUSED), the fused one keeps them on chip.
    """
    requested = (ConvAlgorithm.WINOGRAD_NONFUSED if nonfused
                 else ConvAlgorithm.WINOGRAD)
    b, c, f = shape.n, shape.c, shape.f
    ah, aw = m + shape.kh - 1, m + shape.kw - 1
    tiles = math.ceil(shape.oh / m) * math.ceil(shape.ow / m)
    tile_elems = ah * aw

    data_tf_flops = b * c * tiles * 2.0 * (ah * ah * aw + ah * aw * aw)
    filt_tf_flops = f * c * 2.0 * (ah * ah * shape.kw
                                   + ah * shape.kw * shape.kh)
    prod_flops = 2.0 * b * f * c * tiles * tile_elems
    out_tf_flops = b * f * tiles * 2.0 * (m * ah * aw + m * m * aw)

    v_ws = b * c * tiles * tile_elems * FLOAT_BYTES
    u_ws = f * c * tile_elems * FLOAT_BYTES
    p_ws = b * f * tiles * tile_elems * FLOAT_BYTES

    # cuDNN's fused Winograd kernel exists for 3x3 only; larger kernels run
    # the staged (workspace-streaming) pipeline regardless of the variant
    # requested — which is why Winograd degrades away from 3x3.
    if max(shape.kh, shape.kw) > 3:
        nonfused = True

    if nonfused:
        stages = (
            Stage("filter_transform", "transform", flops=filt_tf_flops,
                  bytes_read=f * c * shape.kernel_elems * FLOAT_BYTES,
                  bytes_written=u_ws),
            Stage("data_transform", "transform", flops=data_tf_flops,
                  bytes_read=b * c * tiles * tile_elems * FLOAT_BYTES,
                  bytes_written=v_ws),
            Stage("batched_gemm", "gemm", flops=prod_flops,
                  bytes_read=v_ws + u_ws, bytes_written=p_ws),
            Stage("output_transform", "transform", flops=out_tf_flops,
                  bytes_read=p_ws,
                  bytes_written=b * f * shape.output_elems * FLOAT_BYTES),
        )
        workspace = v_ws + u_ws + p_ws
    else:
        stages = (
            Stage("filter_transform", "transform", flops=filt_tf_flops,
                  bytes_read=f * c * shape.kernel_elems * FLOAT_BYTES,
                  bytes_written=u_ws),
            Stage("winograd_fused", "winograd",
                  flops=data_tf_flops + prod_flops + out_tf_flops,
                  bytes_read=b * c * tiles * tile_elems * FLOAT_BYTES + u_ws,
                  bytes_written=b * f * shape.output_elems * FLOAT_BYTES),
        )
        workspace = u_ws
    return CounterReport(requested, shape, stages, workspace_bytes=workspace)


# ---------------------------------------------------------------------------
# PolyHankel
# ---------------------------------------------------------------------------

def polyhankel_block_size(shape: ConvShape) -> int:
    """Overlap-save FFT block size: the classic per-sample-optimal choice.

    For kernel-polynomial length ``M = (Kh-1)*Iw + Kw`` (Sec. 3.2), a block
    of size ``nfft`` yields ``nfft - M + 1`` fresh samples, so the FFT work
    per useful sample is ``passes_penalty * nfft * log2(nfft) / (nfft-M+1)``.
    We pick the power-of-two ``nfft`` minimizing that, doubling the weight
    for every extra DRAM pass a beyond-shared-memory transform needs.

    Because of the pass penalty the choice is effectively capped at
    :data:`MAX_SINGLE_PASS_FFT`; once ``M`` grows toward that cap the
    overlap fraction explodes — this is the paper's Fig. 4 mechanism ("the
    FFT size in PolyHankel is determined by the size of kernel vectors.
    When the kernel vector size reaches the next power of two, the FFT size
    will be doubled").
    """
    kernel_len = shape.poly_kernel_len
    floor = max(plan_fft_size(kernel_len + 1, "pow2"), MIN_OS_BLOCK)
    best, best_cost = floor, math.inf
    nfft = floor
    for _ in range(5):
        step = nfft - kernel_len + 1
        penalty = 2.0 ** (fft_passes(nfft) - 1)
        cost = penalty * nfft * math.log2(nfft) / step
        if cost < best_cost:
            best, best_cost = nfft, cost
        nfft *= 2
    return best


def packed_fft_rows(rows: int) -> tuple[int, int]:
    """``(complex_rows, leftover_real_rows)`` after real-pair packing.

    Packing folds adjacent real rows in pairs into one complex transform
    each — halving the row count for even *rows*; an odd count leaves one
    final row on the ordinary real transform.  This is the exact rule the
    engine's interleaved layout follows (``repro.fft.packed``), exposed
    here so counter expressions and gates share one definition.
    """
    return rows // 2, rows % 2


def count_polyhankel(shape: ConvShape, packed: bool = False) -> CounterReport:
    """PolyHankel with overlap-save streaming (Table 2/3 row 4).

    One pass over the un-expanded input: per-channel forward block FFTs,
    frequency-domain channel-summed products, one inverse block FFT per
    (image, filter, block), then the Eq. 12 gather.

    With ``packed=True`` the transform stages model the real-pair-packed
    path: pairs of real rows share one complex FFT, so transform *rows*
    halve (odd channel/filter counts leave one real row) while FLOPs stay
    put — ``2`` real transforms at ``2.5 n log n`` become ``1`` complex
    transform at ``5 n log n``.  Traffic is unchanged too: the packed
    block carries the same samples.  What packing buys on real hardware
    is fewer, larger batched transforms (launch count, occupancy), which
    is exactly what the ``fft_rows`` bench counter tracks.
    """
    b, c, f = shape.n, shape.c, shape.f
    kernel_len = shape.poly_kernel_len
    nfft = polyhankel_block_size(shape)
    bins = nfft // 2 + 1
    step = nfft - (kernel_len - 1)
    signal_len = shape.poly_input_len + kernel_len - 1   # guard per image
    blocks = math.ceil(signal_len / step)                # per image/channel
    passes = fft_passes(nfft)
    # Each extra FFT pass streams the working set through DRAM once more.
    extra = (passes - 1) * 2 * blocks * bins * COMPLEX_BYTES

    def transform_flops(rows: int) -> float:
        """FFT FLOPs for *rows* real transforms per block, packed or not."""
        if not packed:
            return rows * _rfft_flops(nfft)
        pairs, odd = packed_fft_rows(rows)
        return pairs * _cfft_flops(nfft) + odd * _rfft_flops(nfft)

    stages = (
        Stage("input_block_ffts", "fft",
              flops=b * blocks * transform_flops(c),
              bytes_read=b * c * (shape.poly_input_len * FLOAT_BYTES
                                  + extra / 2),
              bytes_written=b * c * (blocks * bins * COMPLEX_BYTES
                                     + extra / 2)),
        Stage("kernel_ffts", "fft",
              flops=f * c * _rfft_flops(nfft),
              bytes_read=f * c * shape.kernel_elems * FLOAT_BYTES,
              bytes_written=f * c * bins * COMPLEX_BYTES * passes),
        Stage("pointwise_channel_sum", "cgemm",
              flops=8.0 * b * f * c * blocks * bins,
              bytes_read=(b * c * blocks + f * c) * bins * COMPLEX_BYTES,
              bytes_written=b * f * blocks * bins * COMPLEX_BYTES),
        # The Eq. 12 gather runs in the inverse FFT's store epilogue (a
        # cuFFT store-callback in the paper's setting): only the useful
        # output coefficients ever reach DRAM.
        Stage("ifft_blocks_gather", "fft",
              flops=b * blocks * transform_flops(f),
              bytes_read=b * f * (blocks * bins * COMPLEX_BYTES + extra / 2),
              bytes_written=b * f * (shape.output_elems * FLOAT_BYTES
                                     + extra / 2)),
    )
    workspace = (b * c + b * f) * blocks * bins * COMPLEX_BYTES
    return CounterReport(ConvAlgorithm.POLYHANKEL, shape, stages,
                         workspace_bytes=workspace)


def count_polyhankel_nd(shape: ConvShapeNd) -> CounterReport:
    """PolyHankel through the rank-generic single-block plan.

    The N-D engine (:mod:`repro.core.ndim`) runs one full-length FFT per
    (image, channel) row — no overlap-save streaming — so the model is the
    2D one with ``blocks = 1`` and ``nfft`` sized by the row-major product
    polynomial length ``poly_product_len`` instead of the per-block cost
    optimum.  Stages mirror ``NdPlan.execute``: per-channel forward FFTs,
    the grouped frequency-domain channel contraction, one inverse FFT per
    (image, filter), then the Eq. 12-style gather.
    """
    b, c, f = shape.n, shape.c, shape.f
    nfft = plan_fft_size(shape.poly_product_len, "pow2")
    bins = nfft // 2 + 1
    passes = fft_passes(nfft)
    extra = (passes - 1) * 2 * bins * COMPLEX_BYTES
    input_elems = math.prod(shape.extents)
    stages = (
        Stage("input_ffts", "fft",
              flops=b * c * _rfft_flops(nfft),
              bytes_read=b * c * (input_elems * FLOAT_BYTES + extra / 2),
              bytes_written=b * c * (bins * COMPLEX_BYTES + extra / 2)),
        Stage("kernel_ffts", "fft",
              flops=f * shape.group_channels * _rfft_flops(nfft),
              bytes_read=f * shape.group_channels
              * shape.kernel_elems * FLOAT_BYTES,
              bytes_written=f * shape.group_channels
              * bins * COMPLEX_BYTES * passes),
        Stage("pointwise_channel_sum", "cgemm",
              flops=8.0 * b * f * shape.group_channels * bins,
              bytes_read=(b * c + f * shape.group_channels)
              * bins * COMPLEX_BYTES,
              bytes_written=b * f * bins * COMPLEX_BYTES),
        Stage("ifft_gather", "fft",
              flops=b * f * _rfft_flops(nfft),
              bytes_read=b * f * (bins * COMPLEX_BYTES + extra / 2),
              bytes_written=b * f * (shape.output_elems * FLOAT_BYTES
                                     + extra / 2)),
    )
    workspace = (b * c + b * f) * bins * COMPLEX_BYTES
    return CounterReport(ConvAlgorithm.POLYHANKEL, shape, stages,
                         workspace_bytes=workspace)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

_COUNTERS = {
    ConvAlgorithm.GEMM: count_gemm,
    ConvAlgorithm.IMPLICIT_GEMM: count_implicit_gemm,
    ConvAlgorithm.IMPLICIT_PRECOMP_GEMM: count_implicit_precomp_gemm,
    ConvAlgorithm.FFT: count_fft,
    ConvAlgorithm.FFT_TILING: count_fft_tiling,
    ConvAlgorithm.WINOGRAD: lambda s: count_winograd(s, nonfused=False),
    ConvAlgorithm.WINOGRAD_NONFUSED:
        lambda s: count_winograd(s, nonfused=True),
    ConvAlgorithm.FINEGRAIN_FFT: count_finegrain_fft,
    ConvAlgorithm.POLYHANKEL: count_polyhankel,
    ConvAlgorithm.POLYHANKEL_OS: count_polyhankel,
}


def count(algorithm: ConvAlgorithm | str, shape: ConvShape) -> CounterReport:
    """Counter report for *algorithm* on *shape*."""
    if isinstance(algorithm, str):
        algorithm = ConvAlgorithm(algorithm)
    try:
        fn = _COUNTERS[algorithm]
    except KeyError:
        raise ValueError(
            f"no counter model for algorithm {algorithm.value!r}"
        ) from None
    return fn(shape)


def modeled_algorithms() -> list[ConvAlgorithm]:
    """Algorithms that have a counter model."""
    return list(_COUNTERS)
