"""Roofline timing simulation.

Each stage's time is the larger of its compute time and its memory time at
the calibrated efficiencies, plus a launch overhead:

    t(stage) = overhead + max(flops / (peak * ce), bytes / (bw * me))

Summing stages gives the simulated API call time the Fig. 3-6 benchmarks
plot.  This is the standard "max of the two walls" roofline; it reproduces
the paper's explanation of its own results (Sec. 4.3: "the memory
performance and the operational performance align well with the execution
time on all the algorithms").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import ConvAlgorithm
from repro.perfmodel.calibration import device_scale, stage_efficiency
from repro.perfmodel.counters import CounterReport, Stage, count
from repro.perfmodel.device import GpuDevice, get_device
from repro.utils.shapes import ConvShape


@dataclass(frozen=True)
class StageTime:
    """Simulated timing breakdown of one stage."""

    stage: Stage
    compute_s: float
    memory_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return self.overhead_s + max(self.compute_s, self.memory_s)

    @property
    def bound(self) -> str:
        """Which roofline wall this stage sits against."""
        return "compute" if self.compute_s >= self.memory_s else "memory"


@dataclass(frozen=True)
class TimingReport:
    """Simulated execution of one algorithm on one device."""

    device: GpuDevice
    report: CounterReport
    stage_times: tuple[StageTime, ...]

    @property
    def total_s(self) -> float:
        return sum(st.total_s for st in self.stage_times)

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3

    def breakdown(self) -> dict[str, float]:
        """Per-stage seconds, by stage name."""
        return {st.stage.name: st.total_s for st in self.stage_times}


def simulate(algorithm: ConvAlgorithm | str, shape: ConvShape,
             device: GpuDevice | str) -> TimingReport:
    """Simulated time of *algorithm* on *shape* on *device*."""
    device = get_device(device)
    report = count(algorithm, shape)
    scale = device_scale(device, report.algorithm)
    times = []
    for stage in report.stages:
        eff = stage_efficiency(stage.kind, report.algorithm)
        # Latency/occupancy wall: tiny kernels cannot saturate the device,
        # so effective throughput degrades as work / (work + saturation).
        mem_util = stage.bytes_moved / (
            stage.bytes_moved + device.saturation_bytes
        ) if stage.bytes_moved else 1.0
        compute_util = stage.flops / (
            stage.flops + device.saturation_flops
        ) if stage.flops else 1.0
        compute_s = stage.flops / (
            device.peak_flops * eff.compute * scale * max(compute_util, 1e-9)
        ) if stage.flops else 0.0
        memory_s = stage.bytes_moved / (
            device.bandwidth * eff.memory * scale * max(mem_util, 1e-9)
        ) if stage.bytes_moved else 0.0
        times.append(StageTime(stage, compute_s, memory_s,
                               device.launch_overhead_s))
    return TimingReport(device, report, tuple(times))


def simulate_ms(algorithm: ConvAlgorithm | str, shape: ConvShape,
                device: GpuDevice | str) -> float:
    """Convenience: simulated milliseconds."""
    return simulate(algorithm, shape, device).total_ms


def compare(shape: ConvShape, device: GpuDevice | str,
            algorithms: list[ConvAlgorithm] | None = None
            ) -> dict[ConvAlgorithm, float]:
    """Simulated milliseconds for several algorithms on one problem."""
    from repro.perfmodel.counters import modeled_algorithms

    algorithms = algorithms or modeled_algorithms()
    return {a: simulate_ms(a, shape, device) for a in algorithms}


#: Device the online-selection bandit prices its priors on.  The absolute
#: magnitudes are calibrated away by the bandit's measured-over-modeled
#: scale; only the *relative* ranking of the arms matters, and that is a
#: property of the algorithms' arithmetic, not of the device.
PRIOR_DEVICE = "3090ti"


def prior_ms(algorithm: ConvAlgorithm | str, shape: ConvShape,
             device: GpuDevice | str = PRIOR_DEVICE) -> float | None:
    """Roofline prior for the selection bandit's warm start.

    ``None`` for algorithms without a counter model (naive): the bandit
    seeds those pessimistically instead of pretending the model priced
    them, so an unmodeled arm is explored last, never served on a guess.
    """
    from repro.baselines.registry import get_entry
    from repro.perfmodel.counters import modeled_algorithms

    algorithm = get_entry(algorithm).algorithm
    if algorithm not in modeled_algorithms():
        return None
    return simulate_ms(algorithm, shape, device)
