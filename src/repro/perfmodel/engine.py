"""Exact counter predictions and a CPU roofline for the *running* engine.

:mod:`repro.perfmodel.counters` models the paper's GPU implementation
(overlap-save blocks, launch-level traffic).  This module models the
engine in this repo exactly: for one cached steady-state
``PolyHankelPlan.execute`` call it predicts the FFT invocation counters
the observe registry will measure (``fft_calls`` / ``fft_rows`` /
``by_kind``), per spectrum layout.  ``repro bench --check`` gates the
measured counters against a recorded baseline; the predictor is the
closed-form statement of what those numbers *must* be, so tests can pin
the gate's expectations instead of copying magic constants:

=============  ======================================================
layout         forward / inverse invocations (sum strategy)
=============  ======================================================
planar         1 ``rfft`` of ``n*c`` rows; 1 ``irfft`` of ``n*f`` rows
interleaved    1 ``fft`` of ``n*g*(c_per//2)`` packed rows (+ 1
               ``rfft`` of ``n*g`` rows when ``c_per`` is odd); 1
               ``ifft`` of ``n*g*(f_per//2)`` packed rows (+ 1
               ``irfft`` of ``n*g`` rows when ``f_per`` is odd)
=============  ======================================================

The merge strategy always runs planar: 1 ``rfft`` of ``n*g`` merged
rows and 1 ``irfft`` of ``n*f`` rows.

The roofline side reuses the GPU-model FLOP/byte stages (packed variant
for the interleaved layout) against the CPU proxy peaks in
:mod:`repro.perfmodel.device`: ``roofline_pct`` is the fraction of the
memory/compute lower bound a measured steady-state call achieves.
"""

from __future__ import annotations

from repro.perfmodel.counters import (
    count_polyhankel,
    count_polyhankel_nd,
    packed_fft_rows,
)
from repro.perfmodel.device import cpu_roofline_seconds
from repro.utils.shapes import ConvShape, ConvShapeNd


def predict_fft_counters(shape: ConvShape, strategy: str = "sum",
                         layout: str = "planar") -> dict:
    """Counters of one cached steady-state engine call.

    Returns the same structure ``repro bench`` records per case:
    ``{"fft_calls": int, "fft_rows": int, "by_kind": {kind: calls}}``.
    *layout* must be concrete (``"planar"`` or ``"interleaved"``) — pass
    the plan's resolved layout, or use
    :func:`repro.core.planning.select_spectrum_layout` first.
    """
    n, g = shape.n, shape.groups
    calls: dict[str, tuple[int, int]] = {}  # kind -> (calls, rows)

    def add(kind: str, rows: int) -> None:
        c, r = calls.get(kind, (0, 0))
        calls[kind] = (c + 1, r + rows)

    if strategy == "merge":
        add("rfft", n * g)
        add("irfft", n * shape.f)
    elif layout == "interleaved":
        c_pairs, c_odd = packed_fft_rows(shape.group_channels)
        f_pairs, f_odd = packed_fft_rows(shape.group_filters)
        if c_pairs:
            add("fft", n * g * c_pairs)
        if c_odd:
            add("rfft", n * g)
        if f_pairs:
            add("ifft", n * g * f_pairs)
        if f_odd:
            add("irfft", n * g)
    else:
        add("rfft", n * shape.c)
        add("irfft", n * shape.f)

    return {
        "fft_calls": sum(c for c, _ in calls.values()),
        "fft_rows": sum(r for _, r in calls.values()),
        "by_kind": {kind: c for kind, (c, _) in sorted(calls.items())},
    }


def predicted_call_ms(shape: ConvShape, layout: str = "planar") -> float:
    """CPU-roofline lower bound (ms) for one cached steady-state call.

    Sums the per-stage ``max(compute wall, memory wall)`` times of the
    PolyHankel cost model, skipping the weight transform (``kernel_ffts``)
    because the spectrum cache amortizes it away from the steady state —
    the same normalization ``repro profile`` applies.
    """
    report = count_polyhankel(shape, packed=(layout == "interleaved"))
    return 1e3 * sum(
        cpu_roofline_seconds(s.flops, s.bytes_moved)
        for s in report.stages if s.name != "kernel_ffts"
    )


def roofline_pct(shape: ConvShape, measured_ms: float,
                 layout: str = "planar") -> float | None:
    """Percent of the CPU roofline bound one measured call achieves."""
    if not measured_ms or measured_ms <= 0:
        return None
    return 100.0 * predicted_call_ms(shape, layout) / measured_ms


# ---------------------------------------------------------------------------
# Rank-generic engine (repro.core.ndim)
# ---------------------------------------------------------------------------

def predict_fft_counters_nd(shape: ConvShapeNd) -> dict:
    """Counters of one cached steady-state ``NdPlan.execute`` call.

    The N-D plan always runs planar full-length transforms, and — unlike
    the rank-2 engine — re-transforms the weights on every call (no
    spectrum cache, by design): one ``rfft`` of ``f * c/groups`` kernel
    rows, one ``rfft`` of ``n*c`` input rows, one ``irfft`` of ``n*f``
    output rows.  (The 1D op never reaches this path — it is lowered onto
    the 2D engine, so its counters follow :func:`predict_fft_counters` on
    the lifted shape.)
    """
    kernel_rows = shape.f * shape.group_channels
    return {
        "fft_calls": 3,
        "fft_rows": kernel_rows + shape.n * (shape.c + shape.f),
        "by_kind": {"irfft": 1, "rfft": 2},
    }


def predicted_call_ms_nd(shape: ConvShapeNd) -> float:
    """CPU-roofline lower bound (ms) for one cached N-D plan call.

    Same normalization as :func:`predicted_call_ms`: the weight transform
    stage is skipped because the spectrum cache amortizes it away.
    """
    report = count_polyhankel_nd(shape)
    return 1e3 * sum(
        cpu_roofline_seconds(s.flops, s.bytes_moved)
        for s in report.stages if s.name != "kernel_ffts"
    )


def roofline_pct_nd(shape: ConvShapeNd,
                    measured_ms: float) -> float | None:
    """Percent of the N-D roofline bound one measured call achieves."""
    if not measured_ms or measured_ms <= 0:
        return None
    return 100.0 * predicted_call_ms_nd(shape) / measured_ms
