"""Measured-vs-model stage profiles (``python -m repro profile``).

This is the repo's version of the paper's Fig. 7 methodology: the analytic
cost model (:mod:`repro.perfmodel.counters`) predicts per-stage FLOPs and
DRAM bytes; this module *measures* the same stages with trace spans and
joins the two, flagging stages whose measured share of the runtime drifts
from the model's predicted share.

Drift is deliberately a **share ratio**, not an absolute-time ratio: the
model targets GPUs while the engine runs on a CPU, so absolute predictions
are meaningless here, but the *distribution* of time across stages should
agree if the model captures the algorithm.  For each stage::

    drift = (measured_ms / sum measured) / (predicted_ms / sum predicted)

with the predicted per-stage time taken from a CPU roofline proxy
``max(flops / PEAK_FLOPS, bytes / PEAK_BW)``.  A stage is flagged when its
drift leaves ``[1/threshold, threshold]``.  One-shot stages (the weight
transform, amortized away by the spectrum cache) are reported but excluded
from the share normalization.
"""

from __future__ import annotations

import json
import time

from repro.observe import aggregate_spans, clear_trace, get_trace, tracing
from repro.observe.registry import counters, fft_call_totals

# CPU roofline proxy peaks, shared with the bench's roofline_pct column
# (re-exported here for callers that import them from this module).
from repro.perfmodel.device import CPU_PEAK_BW, CPU_PEAK_FLOPS  # noqa: F401

DEFAULT_DRIFT_THRESHOLD = 5.0

#: Maps each cost-model stage to the trace spans that implement it, per
#: algorithm.  ``amortized`` marks stages that do not run on the cached
#: steady-state call (measured once, excluded from drift normalization).
STAGE_MAP = {
    "polyhankel": (
        ("input_block_ffts", ("stage.pad", "stage.input_fft"), False),
        ("kernel_ffts", ("weight.transform",), True),
        ("pointwise_channel_sum", ("stage.pointwise",), False),
        ("ifft_blocks_gather", ("stage.inverse_fft", "stage.gather"), False),
    ),
    "gemm": (
        ("im2col", ("stage.im2col",), False),
        ("gemm", ("stage.gemm",), False),
    ),
}


def _runner(case, x, w):
    """Steady-state callable + one-shot weight-transform callable."""
    if case.algorithm == "polyhankel":
        from repro.core import multichannel as mc
        from repro.utils.shapes import ConvShape

        shape = ConvShape(ih=case.size, iw=case.size, kh=case.kernel,
                          kw=case.kernel, n=case.batch, c=case.channels,
                          f=case.filters, padding=case.padding,
                          stride=case.stride, dilation=case.dilation,
                          groups=case.groups)
        plan = mc.get_plan(shape, strategy=case.strategy,
                           backend=case.backend)
        w_hat = plan.transform_weight(w)
        return (lambda: plan.execute(x, w_hat, check=False),
                lambda: plan.transform_weight(w))
    if case.algorithm == "gemm":
        from repro.baselines.im2col_gemm import conv2d_im2col_gemm

        def call():
            return conv2d_im2col_gemm(
                x, w, padding=case.padding, stride=case.stride,
                dilation=case.dilation, groups=case.groups)
        return call, None
    raise ValueError(
        f"profile supports algorithms {sorted(STAGE_MAP)}, "
        f"got {case.algorithm!r}"
    )


def profile_case(case, repeats: int = 10, warmup: int = 2,
                 drift_threshold: float = DEFAULT_DRIFT_THRESHOLD) -> dict:
    """Measure one bench case's stages and join them with the cost model.

    *case* is a :class:`repro.bench.BenchCase` (or anything with the same
    fields plus an ``algorithm`` attribute, see :func:`resolve_preset`).
    """
    from repro.perfmodel.counters import count, count_polyhankel
    from repro.utils.random import random_problem
    from repro.utils.shapes import ConvShape

    shape = ConvShape(ih=case.size, iw=case.size, kh=case.kernel,
                      kw=case.kernel, n=case.batch, c=case.channels,
                      f=case.filters, padding=case.padding,
                      stride=case.stride, dilation=case.dilation,
                      groups=case.groups)
    layout = None
    if case.algorithm == "polyhankel":
        from repro.core.planning import (
            resolve_fft_policy, select_spectrum_layout,
        )

        layout = select_spectrum_layout(
            shape, case.strategy, resolve_fft_policy("auto", case.backend))
    x, w = random_problem(shape)
    call, transform = _runner(case, x, w)

    for _ in range(max(warmup, 1)):
        call()

    counters.clear("fft.")
    counters.clear("bytes.")
    with tracing():
        start = time.perf_counter()
        for _ in range(repeats):
            call()
        wall_s = time.perf_counter() - start
        if transform is not None:
            transform()
        spans = get_trace()
    clear_trace()
    measured = aggregate_spans(spans)
    fft_calls = fft_call_totals()

    if case.algorithm == "polyhankel":
        # The packed counter variant mirrors the interleaved layout's
        # real-pair-packed transforms (same FLOPs, packed rows).
        report = count_polyhankel(shape, packed=(layout == "interleaved"))
    else:
        model_algo = {"gemm": "gemm"}[case.algorithm]
        report = count(model_algo, shape)
    model_stages = {s.name: s for s in report.stages}

    rows = []
    for stage_name, span_names, amortized in STAGE_MAP[case.algorithm]:
        stage = model_stages[stage_name]
        calls = 1 if amortized else repeats
        # Inclusive totals: a stage span's time should include the nested
        # fft.* backend spans that do its actual work.
        measured_ms = sum(
            measured[name]["total_ms"]
            for name in span_names if name in measured
        )
        predicted_s = max(stage.flops / CPU_PEAK_FLOPS,
                          stage.bytes_moved / CPU_PEAK_BW)
        rows.append({
            "stage": stage_name,
            "spans": list(span_names),
            "amortized": amortized,
            "measured_ms": measured_ms / calls,
            "flops": stage.flops,
            "bytes_moved": stage.bytes_moved,
            "predicted_ms": predicted_s * 1e3,
        })

    norm = [r for r in rows if not r["amortized"]]
    measured_total = sum(r["measured_ms"] for r in norm)
    predicted_total = sum(r["predicted_ms"] for r in norm)
    for row in rows:
        if row["amortized"] or not measured_total or not predicted_total:
            row["measured_share"] = None
            row["predicted_share"] = None
            row["drift"] = None
            row["flagged"] = False
            continue
        row["measured_share"] = row["measured_ms"] / measured_total
        row["predicted_share"] = row["predicted_ms"] / predicted_total
        drift = (row["measured_share"] / row["predicted_share"]
                 if row["predicted_share"] else float("inf"))
        row["drift"] = drift
        row["flagged"] = not (1.0 / drift_threshold
                              <= drift <= drift_threshold)

    call_ms = wall_s * 1e3 / repeats
    # Percent of the CPU roofline lower bound one steady-state call
    # reaches — predicted_total excludes the amortized weight transform,
    # matching what a cached call actually runs.
    roofline_pct = (100.0 * predicted_total / call_ms
                    if call_ms > 0 else None)

    return {
        "name": getattr(case, "name", "custom"),
        "algorithm": case.algorithm,
        "strategy": case.strategy,
        "backend": case.backend,
        "layout": layout,
        "shape": {"size": case.size, "kernel": case.kernel,
                  "batch": case.batch, "channels": case.channels,
                  "filters": case.filters, "padding": case.padding,
                  "stride": case.stride, "dilation": case.dilation,
                  "groups": case.groups},
        "repeats": repeats,
        "call_ms": call_ms,
        "drift_threshold": drift_threshold,
        "stages": rows,
        "measured_total_ms": measured_total,
        "predicted_total_ms": predicted_total,
        "roofline_pct": roofline_pct,
        "fft_calls": {
            kind: {"calls": v["calls"], "rows": v["rows"],
                   "by_n": {str(n): c for n, c in sorted(v["by_n"].items())}}
            for kind, v in fft_calls.items()
        },
        "spans": [
            {"name": s.name, "depth": s.depth, "ms": s.duration_ms,
             "attrs": {k: v for k, v in s.attrs.items()}}
            for s in spans
        ],
    }


def resolve_preset(name: str, algorithm: str = "polyhankel"):
    """A bench-suite case by name, retargeted at *algorithm*."""
    from repro.bench import SUITE

    for case in SUITE:
        if case.name == name:
            return _ProfileCase(case, algorithm)
    raise ValueError(
        f"unknown preset {name!r}; known: {[c.name for c in SUITE]}"
    )


class _ProfileCase:
    """A bench case plus the algorithm the profiler should drive."""

    def __init__(self, case, algorithm: str):
        self._case = case
        self.algorithm = algorithm

    def __getattr__(self, item):
        return getattr(self._case, item)


def case_for_shape(algorithm: str = "polyhankel", *, size: int = 32,
                   kernel: int = 3, batch: int = 4, channels: int = 3,
                   filters: int = 8, padding=1, stride=1, dilation=1,
                   groups: int = 1, strategy: str = "sum",
                   backend: str = "numpy"):
    """A profileable case for an ad-hoc shape (the CLI's shape flags)."""
    from repro.bench import BenchCase

    case = BenchCase("custom", size, kernel, batch, channels, filters,
                     padding, strategy=strategy, backend=backend,
                     stride=stride, dilation=dilation, groups=groups)
    return _ProfileCase(case, algorithm)


def format_profile(report: dict) -> str:
    """Human-readable per-stage drift table."""
    layout = f"  layout={report['layout']}" if report.get("layout") else ""
    roofline = (f", {report['roofline_pct']:.1f}% of roofline"
                if report.get("roofline_pct") is not None else "")
    lines = [
        f"profile {report['name']}  algo={report['algorithm']}  "
        f"strategy={report['strategy']}  backend={report['backend']}"
        f"{layout}  "
        f"({report['repeats']} calls, {report['call_ms']:.3f} ms/call"
        f"{roofline})",
        f"{'stage':<24} {'measured':>11} {'flops':>12} {'bytes':>12} "
        f"{'m-share':>8} {'p-share':>8} {'drift':>7}",
    ]
    for row in report["stages"]:
        if row["drift"] is None:
            share = f"{'-':>8} {'-':>8} {'-':>7}"
            note = "  (amortized)" if row["amortized"] else ""
        else:
            flag = " !" if row["flagged"] else ""
            share = (f"{100 * row['measured_share']:7.1f}% "
                     f"{100 * row['predicted_share']:7.1f}% "
                     f"{row['drift']:6.2f}x{flag}")
            note = ""
        lines.append(
            f"{row['stage']:<24} {row['measured_ms']:9.4f}ms "
            f"{row['flops']:12.3g} {row['bytes_moved']:12.3g} "
            f"{share}{note}")
    flagged = [r["stage"] for r in report["stages"] if r["flagged"]]
    if flagged:
        lines.append(f"drift flagged (outside 1/{report['drift_threshold']:g}"
                     f"..{report['drift_threshold']:g}x): "
                     + ", ".join(flagged))
    else:
        lines.append("no stage drift flagged")
    if report["fft_calls"]:
        parts = []
        for kind, v in sorted(report["fft_calls"].items()):
            sizes = ", ".join(f"n={n}:{c}" for n, c in v["by_n"].items())
            parts.append(f"{kind}={v['calls']} ({sizes})")
        lines.append("fft invocations: " + "; ".join(parts))
    return "\n".join(lines)


def write_profile(report: dict, path: str) -> str:
    """Serialize *report* (minus the raw span list) to *path* as JSON."""
    slim = {k: v for k, v in report.items() if k != "spans"}
    with open(path, "w") as fh:
        json.dump(slim, fh, indent=2, default=float)
        fh.write("\n")
    return path
