"""Structured trace spans with a thread-local collector.

Design goals, in order:

1. **Zero overhead when off.**  ``span(...)`` is the only thing the hot
   path ever touches; when tracing is disabled it is one attribute load,
   one truth test and the return of a shared no-op context manager — no
   allocation beyond the kwargs dict the call site builds.  The engine's
   steady-state call makes ~a dozen ``span()`` calls, so the disabled cost
   is a few microseconds against a call measured in hundreds
   (``tests/observe/test_overhead.py`` pins the ratio under 2%).
2. **Correct nesting across threads.**  Each thread keeps its own open-span
   stack, so spans opened inside ``workers=N`` thread-pool chunks attribute
   to their own thread and never interleave with the caller's stack.
3. **Cheap aggregation.**  Completed spans carry ``duration`` and
   ``self_duration`` (duration minus direct children), which is what the
   profile report wants: stage tables use self time so a parent span like
   ``conv2d.forward`` does not double-count its stages.

The span taxonomy used by the engine is documented in ``DESIGN.md``
("Observability" section); nothing in this module hard-codes it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One completed (or still-open) traced region."""

    name: str
    attrs: dict
    thread_id: int
    depth: int
    start_s: float
    end_s: float | None = None
    parent: "Span | None" = None
    child_s: float = 0.0
    index: int = field(default=-1)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3

    @property
    def self_s(self) -> float:
        """Duration minus the time spent in direct child spans."""
        return max(self.duration_s - self.child_s, 0.0)

    @property
    def self_ms(self) -> float:
        return self.self_s * 1e3

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = "".join(f" {k}={v}" for k, v in self.attrs.items())
        return (f"Span({self.name}, {self.duration_ms:.3f} ms, "
                f"depth={self.depth}{extra})")


class _NoopSpan:
    """Shared context manager returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add_attrs(self, **attrs) -> None:
        """No-op counterpart of :meth:`_LiveSpan.add_attrs`."""


_NOOP = _NoopSpan()


class _LiveSpan:
    """Context manager that records one :class:`Span` on exit."""

    __slots__ = ("_record",)

    def __init__(self, name: str, attrs: dict):
        stack = _local.__dict__.setdefault("stack", [])
        parent = stack[-1] if stack else None
        self._record = Span(
            name=name, attrs=attrs, thread_id=threading.get_ident(),
            depth=len(stack), parent=parent,
            start_s=time.perf_counter(),
        )
        stack.append(self._record)

    def __enter__(self) -> "_LiveSpan":
        return self

    def add_attrs(self, **attrs) -> None:
        """Attach attributes discovered mid-span (sizes, byte counts)."""
        self._record.attrs.update(attrs)

    def __exit__(self, *exc) -> bool:
        record = self._record
        record.end_s = time.perf_counter()
        stack = _local.__dict__.get("stack")
        if stack and stack[-1] is record:
            stack.pop()
        if record.parent is not None:
            record.parent.child_s += record.duration_s
        _collect(record)
        return False


class _State:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_STATE = _State()
_local = threading.local()
_collect_lock = threading.Lock()
_completed: list[Span] = []


def _collect(record: Span) -> None:
    from repro.observe import registry

    with _collect_lock:
        record.index = len(_completed)
        _completed.append(record)
    # Spans that know their traffic feed the unified bytes-moved counter.
    nbytes = record.attrs.get("bytes")
    if nbytes is not None:
        registry.counters.add("bytes.moved", float(nbytes),
                              stage=record.name)


def span(name: str, **attrs):
    """Open a traced region; returns a context manager.

    When tracing is disabled (the default) this returns a shared no-op
    object without touching any lock or allocating a record.
    """
    if not _STATE.enabled:
        return _NOOP
    return _LiveSpan(name, attrs)


def tracing_enabled() -> bool:
    """Whether :func:`span` currently records."""
    return _STATE.enabled


def enable_tracing() -> None:
    """Start recording spans (and per-call FFT counters)."""
    _STATE.enabled = True


def disable_tracing() -> None:
    """Stop recording spans; already-collected spans are kept."""
    _STATE.enabled = False


@contextmanager
def tracing(clear: bool = True):
    """Context manager: record spans inside, restore the prior state after.

    ``clear=True`` (default) drops previously collected spans on entry so
    the yielded view is exactly the spans of the managed region.
    """
    if clear:
        clear_trace()
    previous = _STATE.enabled
    _STATE.enabled = True
    try:
        yield _completed
    finally:
        _STATE.enabled = previous


def get_trace() -> list[Span]:
    """Snapshot of all completed spans, in completion order."""
    with _collect_lock:
        return list(_completed)


def clear_trace() -> None:
    """Drop all completed spans."""
    with _collect_lock:
        _completed.clear()


def aggregate_spans(spans: list[Span] | None = None,
                    self_time: bool = True) -> dict[str, dict]:
    """Per-name totals: ``{name: {count, total_ms, mean_ms, ...}}``.

    ``self_time=True`` sums each span's self time (duration minus direct
    children) so nested stage spans do not double-count their parents;
    ``total_ms`` always reports the inclusive duration as well.
    """
    if spans is None:
        spans = get_trace()
    out: dict[str, dict] = {}
    for record in spans:
        row = out.setdefault(record.name, {
            "count": 0, "total_ms": 0.0, "self_ms": 0.0, "max_ms": 0.0,
        })
        row["count"] += 1
        row["total_ms"] += record.duration_ms
        row["self_ms"] += record.self_ms
        row["max_ms"] = max(row["max_ms"], record.duration_ms)
    for row in out.values():
        basis = row["self_ms"] if self_time else row["total_ms"]
        row["mean_ms"] = basis / row["count"] if row["count"] else 0.0
    return out


def format_trace(spans: list[Span] | None = None,
                 limit: int | None = None) -> str:
    """Indented text rendering of a span list (completion order)."""
    if spans is None:
        spans = get_trace()
    if limit is not None:
        spans = spans[:limit]
    lines = []
    for record in spans:
        extra = " ".join(
            f"{k}={v}" for k, v in record.attrs.items() if k != "bytes")
        nbytes = record.attrs.get("bytes")
        if nbytes is not None:
            extra = (extra + f" bytes={int(nbytes)}").strip()
        pad = max(1, 28 - 2 * record.depth)
        lines.append(f"{'  ' * record.depth}{record.name:<{pad}} "
                     f"{record.duration_ms:9.4f} ms  {extra}".rstrip())
    return "\n".join(lines)
