"""Noise-aware performance-regression gate (``repro bench --check``).

Compares a freshly measured :mod:`repro.bench` report against a committed
baseline JSON and decides pass/fail:

- **Wall-clock** (``cached_ms``, ``uncached_ms``): a case regresses when
  ``current / baseline > 1 + tolerance``.  Cases whose baseline sits below
  ``min_ms`` are skipped — at that scale the timer measures the OS, not
  the engine.  The bench harness re-measures flagged cases once with more
  repeats before the verdict (see ``repro.bench.main``), so a single noisy
  block cannot fail the gate.
- **Counter totals** (``fft_calls``, ``fft_rows``): deterministic, so the
  allowed growth is the much tighter ``counter_tolerance``.  A change that
  adds FFT invocations to the steady-state path fails the gate even when
  the machine is fast enough to hide it — exactly the regression the
  2-3x warm-call speedups of PR 1 are made of.
- **Guard counters** (``guard_fallbacks``): zero tolerance.  A healthy
  install never falls back, so the baseline records 0 and *any* fallback
  on a clean run means the primary engine silently broke — a correctness
  regression, not a performance one.
- **Serving throughput** (the report's ``serve`` section): a preset with
  a ``min_speedup`` floor fails when its measured coalescing speedup
  drops below the floor — an absolute contract, not a relative one, so
  the gate holds even if a slow baseline run recorded a low speedup.
  ``served_rps`` additionally must not *decrease* by more than the wall
  tolerance against the baseline.  Like wall-clock cases, flagged serve
  presets are re-measured once before the verdict.
- **Overload goodput** (the report's ``overload`` section): the gate
  point's ``min_goodput_pct`` floor travels with the *current* entry so
  it binds even against pre-overload baselines; ``goodput_rps`` is
  relatively guarded when the baseline has the point, and any
  ``late_completions`` (a request completing after being reported shed)
  fails outright.
- **Selection convergence** (the report's ``selection`` section): a
  seeded, model-driven replay of the online algorithm-selection bandit
  (see :mod:`repro.selection.bandit`), so it is deterministic and needs
  no baseline — each entry carries its own ``max_regret_pct`` ceiling
  against the roofline oracle and must converge onto the oracle's
  modeled-cost tie set.

Baselines are ordinary ``repro bench`` JSON reports; cases are matched by
name, and cases present on only one side are ignored (suites may grow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

WALL_METRICS = ("cached_ms", "uncached_ms")
COUNTER_METRICS = ("fft_calls", "fft_rows")
GUARD_METRICS = ("guard_fallbacks",)

DEFAULT_TOLERANCE = 0.5
DEFAULT_COUNTER_TOLERANCE = 0.1
DEFAULT_MIN_MS = 0.05


@dataclass(frozen=True)
class Regression:
    """One metric of one case exceeding its allowed ratio."""

    case: str
    metric: str
    kind: str  # 'wall' | 'counter' | 'throughput' | 'selection'
    baseline: float
    current: float
    limit: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        if self.kind == "selection":
            if self.metric == "oracle_hit":
                return (f"{self.case}: bandit converged off the roofline "
                        f"oracle's modeled-cost tie set")
            return (f"{self.case}: {self.metric} {self.current:g} exceeded "
                    f"its ceiling {self.limit:g}")
        if self.kind == "throughput":
            # Throughput regresses downward: the limit is a floor.
            return (f"{self.case}: {self.metric} {self.current:g} fell "
                    f"below its floor {self.limit:g} "
                    f"(baseline {self.baseline:g})")
        unit = " ms" if self.kind == "wall" else ""
        if not self.baseline:
            return (f"{self.case}: {self.metric} {self.baseline:g}{unit} -> "
                    f"{self.current:g}{unit} (must not grow)")
        return (f"{self.case}: {self.metric} {self.baseline:g}{unit} -> "
                f"{self.current:g}{unit} ({self.ratio:.2f}x, "
                f"limit {self.limit:.2f}x)")


def compare_reports(current: dict, baseline: dict,
                    tolerance: float = DEFAULT_TOLERANCE,
                    counter_tolerance: float = DEFAULT_COUNTER_TOLERANCE,
                    min_ms: float = DEFAULT_MIN_MS) -> list[Regression]:
    """All regressions of *current* against *baseline* (empty == pass)."""
    regressions = []
    base_by_name = {r["name"]: r for r in baseline.get("results", [])}
    for cur in current.get("results", []):
        base = base_by_name.get(cur["name"])
        if base is None:
            continue
        for metric in WALL_METRICS:
            b, c = base.get(metric), cur.get(metric)
            if not b or not c or b < min_ms:
                continue
            limit = 1.0 + tolerance
            if c / b > limit:
                regressions.append(Regression(
                    cur["name"], metric, "wall", b, c, limit))
        base_counters = base.get("counters") or {}
        cur_counters = cur.get("counters") or {}
        for metric in COUNTER_METRICS:
            b, c = base_counters.get(metric), cur_counters.get(metric)
            if not b or c is None:
                continue
            limit = 1.0 + counter_tolerance
            if c / b > limit:
                regressions.append(Regression(
                    cur["name"], metric, "counter", b, c, limit))
        for metric in GUARD_METRICS:
            # Zero tolerance, and a baseline of 0 is the expected healthy
            # value — unlike the loop above, b == 0 must not be skipped.
            b, c = base_counters.get(metric), cur_counters.get(metric)
            if b is None or c is None:
                continue
            if c > b:
                regressions.append(Regression(
                    cur["name"], metric, "counter", b, c, 1.0))
    regressions += _compare_serve(current, baseline, tolerance)
    regressions += _compare_cluster(current, baseline, tolerance)
    regressions += _compare_overload(current, baseline, tolerance)
    regressions += _compare_selection(current)
    return regressions


def _compare_serve(current: dict, baseline: dict,
                   tolerance: float) -> list[Regression]:
    """Throughput regressions of the reports' ``serve`` sections."""
    regressions = []
    base_by_name = {r["name"]: r for r in baseline.get("serve", [])}
    for cur in current.get("serve", []):
        base = base_by_name.get(cur["name"])
        if base is None:
            continue
        # Absolute floor: the speedup contract travels with the baseline
        # (the preset's min_speedup at baseline-recording time).
        floor = base.get("min_speedup")
        speedup = cur.get("speedup")
        if floor and speedup is not None and speedup < floor:
            regressions.append(Regression(
                cur["name"], "speedup", "throughput",
                base.get("speedup") or 0.0, speedup, floor))
        # Relative guard: served requests/sec must not collapse even on
        # presets without a speedup floor.
        b, c = base.get("served_rps"), cur.get("served_rps")
        if b and c is not None:
            floor_rps = b * max(1.0 - tolerance, 0.0)
            if c < floor_rps:
                regressions.append(Regression(
                    cur["name"], "served_rps", "throughput", b, c,
                    floor_rps))
    return regressions


def _compare_cluster(current: dict, baseline: dict,
                     tolerance: float) -> list[Regression]:
    """Scale-out and throughput regressions of the ``cluster`` sections.

    The 2-worker scale-out floor is an absolute contract like a serve
    preset's ``min_speedup``, but it is only *physical* on a multi-core
    host — the entry's ``gated`` flag (recorded from the measuring host's
    cpu_count) decides whether the floor is enforced, so a single-core
    dev box records the curve without failing on physics.  ``served_rps``
    is additionally guarded relatively per (preset, workers) point.
    """
    regressions = []
    base_by_name = {r["name"]: r for r in baseline.get("cluster", [])}
    for cur in current.get("cluster", []):
        base = base_by_name.get(cur["name"])
        if base is None:
            continue
        floor = base.get("min_scaleout") or cur.get("min_scaleout")
        scaleout = cur.get("scaleout_vs_1")
        if floor and cur.get("gated") and scaleout is not None \
                and scaleout < floor:
            regressions.append(Regression(
                cur["name"], "scaleout_vs_1", "throughput",
                base.get("scaleout_vs_1") or 0.0, scaleout, floor))
        b, c = base.get("served_rps"), cur.get("served_rps")
        if b and c is not None:
            floor_rps = b * max(1.0 - tolerance, 0.0)
            if c < floor_rps:
                regressions.append(Regression(
                    cur["name"], "served_rps", "throughput", b, c,
                    floor_rps))
    return regressions


def _compare_overload(current: dict, baseline: dict,
                      tolerance: float) -> list[Regression]:
    """Goodput regressions of the reports' ``overload`` sections.

    The goodput floor at the gate multiplier is an absolute contract the
    *current* entry carries (``min_goodput_pct``), so it is enforced even
    against baselines recorded before the overload sweep existed — a
    server that collapses under 2x offered load must fail the gate on
    day one, not only after a baseline refresh.  ``goodput_rps`` is
    additionally guarded relatively when the baseline has the point.
    """
    regressions = []
    base_by_name = {r["name"]: r for r in baseline.get("overload", [])}
    for cur in current.get("overload", []):
        base = base_by_name.get(cur["name"]) or {}
        floor = cur.get("min_goodput_pct")
        goodput_pct = cur.get("goodput_pct")
        if floor and goodput_pct is not None and goodput_pct < floor:
            regressions.append(Regression(
                cur["name"], "goodput_pct", "throughput",
                base.get("goodput_pct") or 0.0, goodput_pct, floor))
        b, c = base.get("goodput_rps"), cur.get("goodput_rps")
        if b and c is not None:
            floor_rps = b * max(1.0 - tolerance, 0.0)
            if c < floor_rps:
                regressions.append(Regression(
                    cur["name"], "goodput_rps", "throughput", b, c,
                    floor_rps))
        # Correctness, not performance: a request reported shed must
        # never complete afterwards (exactly-once outcome accounting).
        late = cur.get("late_completions")
        if late:
            regressions.append(Regression(
                cur["name"], "late_completions", "counter",
                0.0, float(late), 0.0))
    return regressions


def _compare_selection(current: dict) -> list[Regression]:
    """Convergence regressions of the report's ``selection`` section.

    The section is a deterministic seeded replay against the roofline
    model, so no baseline comparison is needed — the contract is absolute
    and travels with the *current* entry (like the overload goodput
    floor): regret against the modeled oracle must stay under the
    entry's ``max_regret_pct``, and the bandit must converge onto the
    oracle's modeled-cost tie set.
    """
    regressions = []
    for cur in current.get("selection", []):
        ceiling = cur.get("max_regret_pct")
        regret = cur.get("regret_pct")
        if ceiling is not None and regret is not None and regret > ceiling:
            regressions.append(Regression(
                cur["name"], "regret_pct", "selection",
                0.0, regret, ceiling))
        if not cur.get("oracle_hit", True):
            regressions.append(Regression(
                cur["name"], "oracle_hit", "selection", 1.0, 0.0, 1.0))
    return regressions


def load_baseline(path: str) -> dict:
    """Read a committed baseline report."""
    with open(path) as fh:
        return json.load(fh)


def format_check(regressions: list[Regression], baseline_path: str,
                 tolerance: float, counter_tolerance: float) -> str:
    """Human-readable verdict for the CLI."""
    if not regressions:
        return (f"bench check OK against {baseline_path} "
                f"(tolerance {tolerance:g}, "
                f"counters {counter_tolerance:g})")
    lines = [f"bench check FAILED against {baseline_path}: "
             f"{len(regressions)} regression(s)"]
    lines += [f"  {r.describe()}" for r in regressions]
    return "\n".join(lines)
