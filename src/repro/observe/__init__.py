"""Runtime observability: trace spans, unified counters, profile reports.

The engine's performance story used to rest on hand-run benchmarks and the
*analytic* counters of :mod:`repro.perfmodel` — nothing observed what the
engine actually does at runtime.  This package closes that loop, mirroring
the paper's own Fig. 7 methodology (hardware counters validating the
Table 2/3 cost model):

- :mod:`repro.observe.trace` — structured spans (``with span("rfft", n=512)``)
  recorded by a thread-local collector around the real hot-path stages.
  Disabled by default; the off path is a single flag check returning a
  shared no-op context (see ``tests/observe/test_overhead.py``).
- :mod:`repro.observe.registry` — one process-wide counter registry.  All
  cache surfaces (conv plans, weight spectra, FFT plans, per-layer spectra)
  report hits/misses here, and — while observation is enabled — every FFT
  backend invocation is counted by kind and size, with bytes moved.
- :mod:`repro.observe.profile` — joins measured stage times against the
  :mod:`repro.perfmodel` FLOP/byte predictions and flags drift
  (``python -m repro profile <preset>``).
- :mod:`repro.observe.regression` — the noise-aware CI gate
  (``python -m repro bench --check BASELINE.json``).
"""

from repro.observe.registry import (
    CounterRegistry,
    cache_stats,
    counters,
    format_cache_stats,
    record_cache_event,
)
from repro.observe.trace import (
    Span,
    aggregate_spans,
    clear_trace,
    disable_tracing,
    enable_tracing,
    format_trace,
    get_trace,
    span,
    tracing,
    tracing_enabled,
)

__all__ = [
    "CounterRegistry",
    "Span",
    "aggregate_spans",
    "cache_stats",
    "clear_trace",
    "counters",
    "disable_tracing",
    "enable_tracing",
    "format_cache_stats",
    "format_trace",
    "get_trace",
    "record_cache_event",
    "span",
    "tracing",
    "tracing_enabled",
]
