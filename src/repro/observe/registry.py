"""One process-wide counter registry for every runtime metric.

Before this module each cache kept its own ad-hoc hit/miss dicts
(``fft/plan.py``, the module-level spectrum cache, per-``Conv2d`` spectrum
caches) and the CLI read them inconsistently.  Now every surface reports
events here, and ``python -m repro cache-stats`` renders one coherent table
from this registry.

Counters are keyed by ``(name, tags)`` where *tags* is a sorted tuple of
``(key, value)`` pairs — e.g. FFT invocations are recorded as
``("fft.calls", (("kind", "rfft"), ("n", 512)))`` so per-size/per-kind
breakdowns fall out of the key structure.

Two classes of counters:

- **cache events** (always on): plan/spectrum/FFT-plan/layer-spectrum
  hits and misses.  These were always counted; the registry just unifies
  where.
- **per-call metrics** (on only while tracing is enabled): FFT backend
  invocations by kind and size, rows transformed, bytes moved per stage.
  The hot path guards these behind the same flag as spans, so the
  disabled cost stays a single truth test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

Tags = tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class CounterRow:
    """One (name, tags, value) snapshot row."""

    name: str
    tags: Tags
    value: float

    @property
    def tag_dict(self) -> dict:
        return dict(self.tags)


class CounterRegistry:
    """Thread-safe additive counters keyed by name + tags."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[tuple[str, Tags], float] = {}
        #: Last-merged absolute value per (source, key) — see merge_rows.
        self._merge_state: dict[tuple[str, tuple[str, Tags]], float] = {}

    @staticmethod
    def _key(name: str, tags: dict) -> tuple[str, Tags]:
        return name, tuple(sorted(tags.items()))

    def add(self, name: str, value: float = 1.0, **tags) -> None:
        """Add *value* to the counter ``(name, tags)``."""
        key = self._key(name, tags)
        with self._lock:
            self._data[key] = self._data.get(key, 0.0) + value

    def get(self, name: str, **tags) -> float:
        """Value of one exact ``(name, tags)`` counter (0.0 if unseen)."""
        with self._lock:
            return self._data.get(self._key(name, tags), 0.0)

    def total(self, name: str, **tags) -> float:
        """Sum over every counter with *name* whose tags include *tags*."""
        want = set(tags.items())
        with self._lock:
            return sum(
                v for (n, t), v in self._data.items()
                if n == name and want.issubset(t)
            )

    def snapshot(self, prefix: str = "") -> list[CounterRow]:
        """All counters (optionally name-prefix filtered), sorted by key."""
        with self._lock:
            rows = [CounterRow(n, t, v) for (n, t), v in self._data.items()
                    if n.startswith(prefix)]
        return sorted(rows, key=lambda r: (r.name, r.tags))

    def clear(self, prefix: str = "") -> None:
        """Drop counters whose name starts with *prefix* (all by default)."""
        with self._lock:
            if not prefix:
                self._data.clear()
                self._merge_state.clear()
                return
            for key in [k for k in self._data if k[0].startswith(prefix)]:
                del self._data[key]
            for mkey in [m for m in self._merge_state
                         if m[1][0].startswith(prefix)]:
                del self._merge_state[mkey]

    def reset_unsafe(self) -> None:
        """Replace the lock and drop all state.

        For freshly forked children only: the inherited lock may have been
        captured mid-acquisition by some parent thread, so taking it would
        deadlock.  Never call this in a process with live counter users.
        """
        self._lock = threading.Lock()
        self._data = {}
        self._merge_state = {}

    def merge_rows(self, source: str,
                   rows: list[tuple[str, Tags, float]]) -> None:
        """Delta-merge another process's counter snapshot.

        *rows* are cumulative absolute values from the remote registry
        (e.g. a cluster worker's).  Each call adds only the growth since
        the previous merge from the same *source*, so repeated refreshes
        never double-count.  Merged counters carry an extra
        ``("proc", source)`` tag, keeping per-replica breakdowns
        addressable while ``total(name)`` still sums across processes.
        """
        with self._lock:
            for name, tags, value in rows:
                base_key = (name, tuple(tags))
                state_key = (source, base_key)
                prev = self._merge_state.get(state_key, 0.0)
                delta = value - prev
                if delta < 0:
                    # The source restarted from zero (a respawned
                    # replica): its whole snapshot is new growth.
                    delta = value
                if delta == 0:
                    continue
                self._merge_state[state_key] = value
                tagged = self._key(name, {**dict(tags), "proc": source})
                self._data[tagged] = self._data.get(tagged, 0.0) + delta


#: The process-wide registry every instrumented module reports into.
counters = CounterRegistry()


def record_cache_event(cache: str, hit: bool) -> None:
    """Record one hit or miss on the named cache surface.

    Known surfaces: ``conv_plan``, ``spectrum``, ``fft_plan``,
    ``layer_spectrum`` — but nothing enforces the vocabulary; new caches
    simply pick a name.
    """
    counters.add(f"cache.{cache}.{'hits' if hit else 'misses'}")


def cache_hits_misses(cache: str) -> tuple[int, int]:
    """(hits, misses) of one cache surface, from the registry."""
    return (int(counters.get(f"cache.{cache}.hits")),
            int(counters.get(f"cache.{cache}.misses")))


def reset_cache_stats(cache: str) -> None:
    """Zero the hit/miss counters of one cache surface."""
    counters.clear(f"cache.{cache}.")


def cache_stats() -> list[dict]:
    """The consolidated cache table: one row per cache surface.

    Sizes and limits come from the owning structures (the registry only
    holds event counts); surfaces without a global size — the per-layer
    spectrum caches live on ``Conv2d`` instances — report ``None``.
    """
    from repro.core.multichannel import plan_cache_info, spectrum_cache_info
    from repro.fft.plan import fft_plan_cache_info

    plan = plan_cache_info()
    spectrum = spectrum_cache_info()
    fft_plan = fft_plan_cache_info()
    layer_hits, layer_misses = cache_hits_misses("layer_spectrum")
    rows = [
        {"cache": "conv_plan", "label": "conv plans",
         "hits": plan.hits, "misses": plan.misses,
         "size": plan.size, "maxsize": plan.maxsize},
        {"cache": "spectrum", "label": "weight spectra",
         "hits": spectrum.hits, "misses": spectrum.misses,
         "size": spectrum.size, "maxsize": spectrum.maxsize},
        {"cache": "fft_plan", "label": "fft plans",
         "hits": fft_plan.hits, "misses": fft_plan.misses,
         "size": fft_plan.size, "maxsize": fft_plan.maxsize},
        {"cache": "layer_spectrum", "label": "layer spectra",
         "hits": layer_hits, "misses": layer_misses,
         "size": None, "maxsize": None},
    ]
    for row in rows:
        total = row["hits"] + row["misses"]
        row["hit_rate"] = row["hits"] / total if total else None
    return rows


def format_cache_stats(rows: list[dict] | None = None) -> str:
    """Render :func:`cache_stats` as the CLI's coherent table."""
    if rows is None:
        rows = cache_stats()
    lines = [f"{'cache':<16} {'hits':>8} {'misses':>8} {'hit%':>7} "
             f"{'size':>6} {'max':>6}"]
    for row in rows:
        rate = f"{100 * row['hit_rate']:6.1f}%" if row["hit_rate"] is not None \
            else f"{'-':>7}"
        size = row["size"] if row["size"] is not None else "-"
        maxsize = row["maxsize"] if row["maxsize"] is not None else "-"
        lines.append(f"{row['label']:<16} {row['hits']:>8} "
                     f"{row['misses']:>8} {rate} {size:>6} {maxsize:>6}")
    return "\n".join(lines)


def serve_stats() -> dict:
    """Consolidated serving-layer metrics from the unified registry.

    Raw counters are additive (``serve.batch_size`` is the *sum* of
    stacked rows); derived ratios — mean batch size, mean queue wait,
    coalesce rate — are computed here so every consumer (CLI, bench
    harness, ``ConvServer.stats``) agrees on the arithmetic.
    """
    requests = counters.total("serve.requests")
    batches = counters.total("serve.batches")
    batch_rows = counters.total("serve.batch_size")
    wait_ms = counters.total("serve.queue_wait_ms")
    coalesced = counters.total("serve.coalesced")
    stats = {
        "requests": int(requests),
        "batches": int(batches),
        "coalesced": int(coalesced),
        "shards": int(counters.total("serve.shards")),
        # Overload-control outcomes (deadline shedding / admission).
        "completed": int(counters.total("serve.completed")),
        "shed": int(counters.total("serve.shed")),
        "rejected": int(counters.total("serve.rejected")),
        "slot_timeouts": int(counters.total("serve.slot_timeout")),
        "mean_batch_size": batch_rows / batches if batches else None,
        "mean_queue_wait_ms": wait_ms / batches if batches else None,
        "coalesce_rate": coalesced / requests if requests else None,
    }
    # Online algorithm selection: surface the counters whenever the
    # bandit has made at least one decision this process lifetime.
    from repro.selection.bandit import selection_counter_stats

    selection = selection_counter_stats()
    if selection["decisions"]:
        stats["selection"] = selection
    return stats


def replica_stats() -> dict[str, dict]:
    """Per-replica rollup of counters merged from cluster workers.

    Groups every counter carrying a ``proc`` tag by its source (the
    ``replicaN`` label :meth:`CounterRegistry.merge_rows` stamped), with
    the proc tag stripped from the inner keys.  Empty when no cluster has
    run in this process.
    """
    out: dict[str, dict] = {}
    for row in counters.snapshot():
        tags = row.tag_dict
        source = tags.pop("proc", None)
        if source is None:
            continue
        entry = out.setdefault(str(source), {})
        suffix = "".join(f"[{k}={v}]" for k, v in sorted(tags.items()))
        entry[row.name + suffix] = entry.get(row.name + suffix, 0.0) \
            + row.value
    return out


def format_serve_stats(stats: dict | None = None) -> str:
    """Render :func:`serve_stats` for the CLI.

    When a cluster has run (``stats["cluster"]`` from
    ``ClusterServer.stats()`` or merged worker counters in the registry),
    a per-replica table follows the aggregate block.
    """
    if stats is None:
        stats = serve_stats()

    def fmt(value, spec):
        return format(value, spec) if value is not None else "-"
    lines = [
        f"requests        {stats['requests']:>10}",
        f"batches         {stats['batches']:>10}",
        f"coalesced       {stats['coalesced']:>10}",
        f"shards          {stats['shards']:>10}",
        f"completed       {stats.get('completed', 0):>10}",
        f"shed            {stats.get('shed', 0):>10}",
        f"rejected        {stats.get('rejected', 0):>10}",
        f"slot timeouts   {stats.get('slot_timeouts', 0):>10}",
        f"mean batch size {fmt(stats['mean_batch_size'], '10.2f')}",
        f"mean wait (ms)  {fmt(stats['mean_queue_wait_ms'], '10.3f')}",
        f"coalesce rate   {fmt(stats['coalesce_rate'], '10.1%')}",
    ]
    selection = stats.get("selection")
    if selection:
        lines.append("")
        lines.append(
            f"selection: {selection['decisions']} decision(s), "
            f"{selection['applied']} applied, "
            f"{selection['explored']} shadow(s) "
            f"({selection['shadow_ok']} ok, "
            f"{selection['shadow_parity_fail']} parity-fail, "
            f"{selection['shadow_error']} error), "
            f"{selection['arms_poisoned']} arm(s) poisoned")
    cluster = stats.get("cluster")
    if cluster and cluster.get("replicas"):
        lines.append("")
        lines.append(f"cluster: {cluster['workers']} worker(s), "
                     f"transport={cluster['transport']}, arena "
                     f"{cluster['arena']['free']}/{cluster['arena']['slots']} "
                     f"slots free")
        lines.append(f"{'replica':>8} {'pid':>8} {'state':>7} "
                     f"{'served':>8} {'inflight':>8} {'convs':>8} "
                     f"{'breaker':>8}")
        for rep in cluster["replicas"]:
            state = "up" if rep["alive"] else "down"
            breaker = "open" if rep["breaker_open"] else "closed"
            convs = int(rep["worker"].get(
                "serve.cluster.worker_convs", 0))
            lines.append(f"{rep['id']:>8} {rep['pid'] or '-':>8} "
                         f"{state:>7} {rep['served']:>8} "
                         f"{rep['inflight']:>8} {convs:>8} {breaker:>8}")
    else:
        merged = replica_stats()
        if merged:
            lines.append("")
            lines.append(f"{'replica':>8} {'convs':>8} {'rows':>8}")
            for source in sorted(merged):
                entry = merged[source]
                lines.append(
                    f"{source:>8} "
                    f"{int(entry.get('serve.cluster.worker_convs', 0)):>8} "
                    f"{int(entry.get('serve.cluster.worker_rows', 0)):>8}")
    return "\n".join(lines)


def fft_call_totals() -> dict[str, dict]:
    """Per-kind FFT invocation totals recorded while tracing was enabled.

    Returns ``{kind: {"calls": int, "rows": int, "by_n": {n: calls}}}``.
    """
    out: dict[str, dict] = {}
    for row in counters.snapshot("fft.calls"):
        tags = row.tag_dict
        kind = tags.get("kind", "?")
        entry = out.setdefault(kind, {"calls": 0, "rows": 0, "by_n": {}})
        entry["calls"] += int(row.value)
        n = tags.get("n")
        entry["by_n"][n] = entry["by_n"].get(n, 0) + int(row.value)
    for row in counters.snapshot("fft.rows"):
        kind = row.tag_dict.get("kind", "?")
        entry = out.setdefault(kind, {"calls": 0, "rows": 0, "by_n": {}})
        entry["rows"] += int(row.value)
    return out
